// Unit tests for the util substrate: RNG, byte buffers, statistics,
// CSV emission, and the thread pool.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/atomic_file.h"
#include "util/byte_buffer.h"
#include "util/fs.h"
#include "util/csv_writer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace threelc::util {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, IntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.Int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.Next() == child.Next());
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 5; ++i) EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
}

// ---------- ByteBuffer / ByteReader ----------

TEST(ByteBuffer, StartsEmpty) {
  ByteBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ByteBuffer, PushAndReadBytes) {
  ByteBuffer buf;
  buf.PushByte(0x12);
  buf.PushByte(0xFE);
  ByteReader r(buf);
  EXPECT_EQ(r.ReadByte(), 0x12);
  EXPECT_EQ(r.ReadByte(), 0xFE);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteBuffer, ScalarRoundTrip) {
  ByteBuffer buf;
  buf.AppendU8(7);
  buf.AppendU16(65500);
  buf.AppendU32(0xDEADBEEF);
  buf.AppendU64(0x0123456789ABCDEFULL);
  buf.AppendF32(3.25f);
  buf.AppendF64(-1e100);
  ByteReader r(buf);
  EXPECT_EQ(r.ReadU8(), 7);
  EXPECT_EQ(r.ReadU16(), 65500);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.ReadF32(), 3.25f);
  EXPECT_EQ(r.ReadF64(), -1e100);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteBuffer, AppendSpanCopies) {
  ByteBuffer a;
  a.AppendU32(42);
  ByteBuffer b;
  b.Append(a.span());
  EXPECT_EQ(a, b);
}

TEST(ByteReader, UnderflowThrows) {
  ByteBuffer buf;
  buf.AppendU16(1);
  ByteReader r(buf);
  EXPECT_THROW(r.ReadU32(), std::out_of_range);
}

TEST(ByteReader, ReadSpanAdvances) {
  ByteBuffer buf;
  for (int i = 0; i < 10; ++i) buf.PushByte(static_cast<std::uint8_t>(i));
  ByteReader r(buf);
  ByteSpan s = r.ReadSpan(4);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s[3], 3);
  EXPECT_EQ(r.ReadByte(), 4);
  EXPECT_EQ(r.remaining(), 5u);
}

TEST(ByteReader, ReadSpanPastEndThrows) {
  ByteBuffer buf;
  buf.PushByte(1);
  ByteReader r(buf);
  EXPECT_THROW(r.ReadSpan(2), std::out_of_range);
}

TEST(ByteBuffer, ClearResets) {
  ByteBuffer buf;
  buf.AppendU64(9);
  buf.Clear();
  EXPECT_TRUE(buf.empty());
}

TEST(ByteReader, PositionTracksConsumption) {
  ByteBuffer buf;
  buf.AppendU32(1);
  buf.AppendU32(2);
  ByteReader r(buf);
  EXPECT_EQ(r.position(), 0u);
  r.ReadU32();
  EXPECT_EQ(r.position(), 4u);
}

// ---------- RunningStat ----------

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMeanVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a, b, all;
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal();
    (i % 2 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmptyIsIdentity) {
  RunningStat a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
}

TEST(RunningStat, MergeEmptyWithEmptyStaysEmpty) {
  RunningStat a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(RunningStat, MergeEmptyWithNonEmptyTakesOther) {
  RunningStat empty, b;
  b.Add(2.0);
  b.Add(4.0);
  b.Add(6.0);
  empty.Merge(b);
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.mean(), 4.0);
  EXPECT_DOUBLE_EQ(empty.min(), 2.0);
  EXPECT_DOUBLE_EQ(empty.max(), 6.0);
  EXPECT_DOUBLE_EQ(empty.variance(), b.variance());
}

TEST(RunningStat, MergeLargeCountsIsNumericallyStable) {
  // Chan's parallel formula must not lose precision when both sides hold
  // millions of samples whose means differ only slightly.
  RunningStat a, b, all;
  constexpr int kN = 1'000'000;
  for (int i = 0; i < kN; ++i) {
    const double xa = 1000.0 + 1e-6 * static_cast<double>(i % 97);
    const double xb = 1000.0 + 1e-6 * static_cast<double>((i + 13) % 89);
    a.Add(xa);
    b.Add(xb);
    all.Add(xa);
    all.Add(xb);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), static_cast<std::size_t>(2 * kN));
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(Ema, TracksConstantInput) {
  Ema ema(0.1);
  for (int i = 0; i < 100; ++i) ema.Add(4.0);
  EXPECT_NEAR(ema.value(), 4.0, 1e-12);
}

TEST(Ema, FirstValueInitializes) {
  Ema ema(0.5);
  ema.Add(10.0);
  EXPECT_EQ(ema.value(), 10.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bin_count(b), 10u);
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 1.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-100.0);
  h.Add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, QuantileEdges) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(static_cast<double>(i) + 0.5);
  // q clamps to [0, 1]: q<=0 is the lowest occupied bin's midpoint, q>=1
  // the highest.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.Quantile(-1.0));
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.Quantile(2.0));
  EXPECT_NEAR(h.Quantile(0.0), 0.5, 0.51);
  EXPECT_NEAR(h.Quantile(1.0), 9.5, 0.51);
  EXPECT_LT(h.Quantile(0.0), h.Quantile(1.0));
}

TEST(Histogram, QuantileOfEmptyIsLowerBound) {
  Histogram h(2.0, 8.0, 6);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);
}

TEST(Histogram, QuantileAllMassInOneBin) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 50; ++i) h.Add(3.2);  // all mass in bin [3, 4)
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), h.Quantile(1.0));
  EXPECT_NEAR(h.Quantile(0.5), 3.5, 1e-12);  // bin midpoint
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.Add(1.5);
  b.Add(1.5);
  b.Add(7.5);
  a.Merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bin_count(1), 2u);
  EXPECT_EQ(a.bin_count(7), 1u);
}

// ---------- CsvWriter ----------

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.NewRow().Add(1).Add("x");
    csv.NewRow().Add(2.5).Add("y,z");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,\"y,z\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, EscapesQuotes) {
  const std::string path = ::testing::TempDir() + "/csv_quote.csv";
  {
    CsvWriter csv(path, {"v"});
    csv.NewRow().Add("say \"hi\"");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line, "\"say \"\"hi\"\"\"");
  std::remove(path.c_str());
}

TEST(CsvWriter, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}),
               std::runtime_error);
}

// ---------- ThreadPool ----------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, SizeClampsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> x{0};
  pool.ParallelFor(3, [&](std::size_t) { ++x; });
  EXPECT_EQ(x.load(), 3);
}

TEST(ParseLogLevel, AcceptsAliasesCaseInsensitively) {
  LogLevel level;
  ASSERT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  ASSERT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  ASSERT_TRUE(ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  ASSERT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  ASSERT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
}

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.ElapsedSeconds(), 0.015);
  EXPECT_LT(t.ElapsedSeconds(), 5.0);
}

// Truncation regressions: a reader positioned one byte short of every
// field width must throw std::out_of_range, not read past the span. The
// wire runtime leans on this to reject short payloads loudly.
TEST(ByteReader, ThrowsOnTruncationAtEveryFieldWidth) {
  ByteBuffer buf;
  for (int i = 0; i < 16; ++i) buf.PushByte(static_cast<std::uint8_t>(i));

  auto reader_with = [&](std::size_t available) {
    return ByteReader(ByteSpan(buf.data(), available));
  };

  EXPECT_THROW(reader_with(0).ReadU8(), std::out_of_range);
  EXPECT_THROW(reader_with(1).ReadU16(), std::out_of_range);
  EXPECT_THROW(reader_with(3).ReadU32(), std::out_of_range);
  EXPECT_THROW(reader_with(7).ReadU64(), std::out_of_range);
  EXPECT_THROW(reader_with(3).ReadF32(), std::out_of_range);
  EXPECT_THROW(reader_with(7).ReadF64(), std::out_of_range);

  std::uint8_t sink[8];
  EXPECT_THROW(reader_with(7).ReadInto(sink, 8), std::out_of_range);
  EXPECT_THROW(reader_with(7).ReadSpan(8), std::out_of_range);

  // One byte more succeeds in each case.
  EXPECT_NO_THROW(reader_with(1).ReadU8());
  EXPECT_NO_THROW(reader_with(2).ReadU16());
  EXPECT_NO_THROW(reader_with(4).ReadU32());
  EXPECT_NO_THROW(reader_with(8).ReadU64());
  EXPECT_NO_THROW(reader_with(4).ReadF32());
  EXPECT_NO_THROW(reader_with(8).ReadF64());
  EXPECT_NO_THROW(reader_with(8).ReadInto(sink, 8));
  EXPECT_NO_THROW(reader_with(8).ReadSpan(8));
}

TEST(ByteReader, UnderflowLeavesCursorUnmoved) {
  ByteBuffer buf;
  buf.AppendU16(0x1234);
  ByteReader reader(buf);
  EXPECT_THROW(reader.ReadU32(), std::out_of_range);
  EXPECT_EQ(reader.position(), 0u);
  EXPECT_EQ(reader.ReadU16(), 0x1234);
  EXPECT_TRUE(reader.AtEnd());
}

// Resize growth must zero-fill (std::vector semantics) so a partial
// overwrite can never leak stale heap bytes onto the wire.
TEST(ByteBuffer, ResizeGrowthZeroFills) {
  ByteBuffer buf;
  for (int i = 0; i < 8; ++i) buf.PushByte(0xAB);
  buf.Resize(4);   // shrink keeps the prefix
  buf.Resize(12);  // growth must zero the new tail
  ASSERT_EQ(buf.size(), 12u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(buf.data()[i], 0xAB);
  for (std::size_t i = 4; i < 12; ++i) EXPECT_EQ(buf.data()[i], 0x00);
}

// ---------- Fs / FaultFs / AtomicFileWriter ----------

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FaultFs, ParsesSpecGrammar) {
  std::vector<FsFaultRule> rules;
  std::string error;
  ASSERT_TRUE(FaultFs::ParseSpec(
      "enospc:write@any#*;eio:fsync@2;short:write@0;torn:rename@1#3",
      &rules, &error))
      << error;
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].action, FsFaultAction::kEnospc);
  EXPECT_FALSE(rules[0].any_op);
  EXPECT_EQ(rules[0].op, FsOp::kWrite);
  EXPECT_TRUE(rules[0].any_call);
  EXPECT_TRUE(rules[0].every_match);
  EXPECT_EQ(rules[1].action, FsFaultAction::kEio);
  EXPECT_EQ(rules[1].op, FsOp::kFsync);
  EXPECT_FALSE(rules[1].any_call);
  EXPECT_EQ(rules[1].call, 2u);
  EXPECT_EQ(rules[2].action, FsFaultAction::kShort);
  EXPECT_EQ(rules[3].action, FsFaultAction::kTorn);
  EXPECT_EQ(rules[3].occurrence, 3);
}

TEST(FaultFs, RejectsMalformedAndMismatchedSpecs) {
  std::vector<FsFaultRule> rules;
  std::string error;
  // Unknown action, missing '@', and actions bound to the wrong op.
  EXPECT_FALSE(FaultFs::ParseSpec("explode:write@0", &rules, &error));
  EXPECT_FALSE(FaultFs::ParseSpec("enospc:write", &rules, &error));
  EXPECT_FALSE(FaultFs::ParseSpec("short:fsync@0", &rules, &error));
  EXPECT_FALSE(FaultFs::ParseSpec("fsyncfail:write@0", &rules, &error));
  EXPECT_FALSE(FaultFs::ParseSpec("torn:write@0", &rules, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FaultFs, EnospcFailsTheTargetedWriteOnly) {
  const std::string path = ::testing::TempDir() + "/faultfs_enospc.txt";
  FaultFs fs(Fs::Real(), /*seed=*/1);
  std::string error;
  ASSERT_TRUE(fs.AddRulesFromSpec("enospc:write@1", &error)) << error;
  const int fd = fs.Open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(fs.Write(fd, "ok", 2), 2);
  errno = 0;
  EXPECT_EQ(fs.Write(fd, "no", 2), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(fs.Write(fd, "ok", 2), 2);  // only call index 1 is targeted
  fs.Close(fd);
  EXPECT_EQ(fs.faults_injected(), 1u);
  ASSERT_EQ(fs.schedule_log().size(), 1u);
  EXPECT_NE(fs.schedule_log()[0].find("enospc write call=1"),
            std::string::npos)
      << fs.schedule_log()[0];
  std::remove(path.c_str());
}

TEST(FaultFs, ShortWriteIsCompletedByTheRetryLoop) {
  const std::string path = ::testing::TempDir() + "/faultfs_short.txt";
  std::remove(path.c_str());
  FaultFs fs(Fs::Real(), /*seed=*/7);
  std::string error;
  ASSERT_TRUE(fs.AddRulesFromSpec("short:write@0", &error)) << error;
  {
    AtomicFileWriter w(path, &fs);
    const std::string payload = "the write loop must finish the tail";
    w.Write(payload.data(), payload.size());
    w.Commit();
  }
  EXPECT_GT(fs.calls(FsOp::kWrite), 1u);  // the short write forced a retry
  EXPECT_EQ(fs.faults_injected(), 1u);
  EXPECT_EQ(ReadWholeFile(path), "the write loop must finish the tail");
  std::remove(path.c_str());
}

TEST(FaultFs, FsyncFailureAbortsCommitAndRemovesTemp) {
  const std::string path = ::testing::TempDir() + "/faultfs_fsync.txt";
  std::remove(path.c_str());
  FaultFs fs(Fs::Real(), /*seed=*/3);
  std::string error;
  ASSERT_TRUE(fs.AddRulesFromSpec("fsyncfail:fsync@0", &error)) << error;
  std::string temp_path;
  try {
    AtomicFileWriter w(path, &fs);
    temp_path = w.temp_path();
    w.Write("x", 1);
    w.Commit();
    FAIL() << "Commit() with a failing fsync must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("sync"), std::string::npos)
        << e.what();
  }
  // Neither the target nor the temp may exist: no torn state left behind.
  EXPECT_TRUE(ReadWholeFile(path).empty());
  EXPECT_TRUE(ReadWholeFile(temp_path).empty());
}

TEST(FaultFs, TornRenameLeavesTargetUntouchedAndLatchesCrash) {
  const std::string path = ::testing::TempDir() + "/faultfs_torn.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "previous contents";
  }
  FaultFs fs(Fs::Real(), /*seed=*/9);
  std::string error;
  ASSERT_TRUE(fs.AddRulesFromSpec("torn:rename@0", &error)) << error;
  {
    AtomicFileWriter w(path, &fs);
    w.Write("new contents", 12);
    w.Commit();  // "succeeds": the fault swallows the rename
  }
  EXPECT_EQ(ReadWholeFile(path), "previous contents");
  // The crash latch is check-and-clear: a restarted server sharing this
  // FaultFs must not crash again on its next checkpoint.
  EXPECT_TRUE(fs.TakeCrashRequest());
  EXPECT_FALSE(fs.TakeCrashRequest());
  std::remove(path.c_str());
  std::remove((path + ".tmp." + std::to_string(::getpid())).c_str());
}

TEST(AtomicFileWriter, CommitFsyncsFileAndParentDirectory) {
  const std::string path = ::testing::TempDir() + "/atomic_dirsync.txt";
  std::remove(path.c_str());
  FaultFs fs(Fs::Real(), /*seed=*/0);  // no rules: pure pass-through counter
  {
    AtomicFileWriter w(path, &fs);
    w.Write("durable", 7);
    w.Commit();
  }
  // One fsync for the temp file's data, one for the parent directory's
  // entry table — the documented durability contract.
  EXPECT_EQ(fs.calls(FsOp::kFsync), 2u);
  EXPECT_EQ(fs.calls(FsOp::kRename), 1u);
  EXPECT_EQ(fs.faults_injected(), 0u);
  EXPECT_EQ(ReadWholeFile(path), "durable");
  std::remove(path.c_str());
}

TEST(SweepStaleTemps, RemovesDeadPidTempsOnly) {
  const std::string dir = ::testing::TempDir() + "/sweep_test_dir";
  ::mkdir(dir.c_str(), 0755);
  const auto touch = [&](const std::string& name) {
    std::ofstream out(dir + "/" + name, std::ios::binary);
    out << "x";
  };
  // A pid that cannot exist (beyond any real pid_max) => stale.
  touch("ckpt.g3.tmp.999999999");
  // This process is alive => a live writer's temp, must survive.
  const std::string live = "ckpt.g4.tmp." + std::to_string(::getpid());
  touch(live);
  // Non-matching names must never be touched.
  touch("ckpt.g3");
  touch("ckpt.tmp.notapid");
  touch("unrelated.txt");

  EXPECT_EQ(SweepStaleTemps(*Fs::Real(), dir), 1);
  EXPECT_TRUE(ReadWholeFile(dir + "/ckpt.g3.tmp.999999999").empty());
  EXPECT_EQ(ReadWholeFile(dir + "/" + live), "x");
  EXPECT_EQ(ReadWholeFile(dir + "/ckpt.g3"), "x");
  EXPECT_EQ(ReadWholeFile(dir + "/ckpt.tmp.notapid"), "x");
  EXPECT_EQ(ReadWholeFile(dir + "/unrelated.txt"), "x");
  // Idempotent: nothing stale remains.
  EXPECT_EQ(SweepStaleTemps(*Fs::Real(), dir), 0);
  std::remove((dir + "/" + live).c_str());
  std::remove((dir + "/ckpt.g3").c_str());
  std::remove((dir + "/ckpt.tmp.notapid").c_str());
  std::remove((dir + "/unrelated.txt").c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace threelc::util
