// Tests for the parameter-server substrate: tensor plans, gradient
// aggregation, shared compressed pulls, and worker/server consistency.
#include <gtest/gtest.h>

#include <memory>

#include "compress/factory.h"
#include "nn/optimizer.h"
#include "ps/plan.h"
#include "ps/server.h"
#include "ps/worker.h"
#include "tensor/tensor_ops.h"
#include "train/model_zoo.h"
#include "util/rng.h"

namespace threelc::ps {
namespace {

using compress::CodecConfig;
using tensor::Shape;
using tensor::Tensor;

train::MlpSpec TinySpec() { return {6, {16}, 3, true}; }

std::shared_ptr<const compress::Compressor> Codec(const CodecConfig& cfg) {
  return std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(cfg));
}

// ---------- TensorPlan ----------

TEST(TensorPlan, SmallTensorsBypassCompression) {
  auto model = train::BuildMlp(TinySpec(), 1);
  auto plan = TensorPlan::FromParams(model.Params(), /*min_elems=*/50);
  // fc1/W: 6*16=96 -> compressed. fc1/b: 16 -> bypass. bn gamma/beta: 16
  // -> bypass (also compress=false). classifier/W: 48 -> bypass (<50).
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_TRUE(plan.entry(0).compressed);    // fc1/W
  EXPECT_FALSE(plan.entry(1).compressed);   // fc1/b
  EXPECT_FALSE(plan.entry(2).compressed);   // bn gamma
  EXPECT_FALSE(plan.entry(3).compressed);   // bn beta
  EXPECT_FALSE(plan.entry(4).compressed);   // classifier/W (48 < 50)
  EXPECT_FALSE(plan.entry(5).compressed);   // classifier/b
}

TEST(TensorPlan, BatchNormNeverCompressedEvenIfLarge) {
  auto model = train::BuildMlp({6, {300}, 3, true}, 1);
  auto plan = TensorPlan::FromParams(model.Params(), 10);
  // Entry 2/3 are bn gamma/beta with 300 elements but compress=false.
  EXPECT_FALSE(plan.entry(2).compressed);
  EXPECT_FALSE(plan.entry(3).compressed);
  EXPECT_TRUE(plan.entry(0).compressed);
}

TEST(TensorPlan, ElementCounts) {
  auto model = train::BuildMlp(TinySpec(), 1);
  auto plan = TensorPlan::FromParams(model.Params(), 50);
  EXPECT_EQ(plan.TotalElements(), model.NumParameters());
  EXPECT_EQ(plan.CompressedElements(), 96);
}

// ---------- Server/Worker round trip with the lossless codec ----------

class PsLossless : public ::testing::Test {
 protected:
  void SetUp() override {
    global_ = train::BuildMlp(TinySpec(), 7);
    plan_ = TensorPlan::FromParams(global_.Params(), 8);
    codec_ = Codec(CodecConfig::Float32());
    server_ = std::make_unique<ParameterServer>(global_, plan_, codec_,
                                                nn::MomentumOptions{0.9f, 0.0f});
    for (int w = 0; w < 3; ++w) {
      worker_models_.push_back(train::BuildMlp(TinySpec(), 7));
      worker_models_.back().CopyParamsFrom(global_);
    }
    for (int w = 0; w < 3; ++w) {
      workers_.push_back(
          std::make_unique<Worker>(w, worker_models_[static_cast<std::size_t>(w)],
                                   plan_, codec_));
    }
  }

  void FillGrads(nn::Model& model, float value) {
    for (auto& p : model.Params()) p.grad->Fill(value);
  }

  void OneStep(float lr) {
    server_->BeginStep();
    for (auto& worker : workers_) {
      util::ByteBuffer buf;
      for (std::size_t t = 0; t < plan_.size(); ++t) {
        worker->EncodePush(t, buf);
      }
      util::ByteReader reader(buf);
      for (std::size_t t = 0; t < plan_.size(); ++t) {
        server_->ReceivePush(t, reader);
      }
    }
    server_->UpdateAndPreparePulls(lr, 3);
    for (auto& worker : workers_) {
      for (std::size_t t = 0; t < plan_.size(); ++t) {
        util::ByteReader reader(server_->PullPayload(t));
        worker->ApplyPull(t, reader);
      }
    }
  }

  nn::Model global_;
  std::vector<nn::Model> worker_models_;
  TensorPlan plan_;
  std::shared_ptr<const compress::Compressor> codec_;
  std::unique_ptr<ParameterServer> server_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

TEST_F(PsLossless, AggregationAveragesGradients) {
  FillGrads(worker_models_[0], 1.0f);
  FillGrads(worker_models_[1], 2.0f);
  FillGrads(worker_models_[2], 3.0f);
  server_->BeginStep();
  for (auto& worker : workers_) {
    util::ByteBuffer buf;
    for (std::size_t t = 0; t < plan_.size(); ++t) worker->EncodePush(t, buf);
    util::ByteReader reader(buf);
    for (std::size_t t = 0; t < plan_.size(); ++t) {
      server_->ReceivePush(t, reader);
    }
  }
  server_->UpdateAndPreparePulls(0.0f, 3);
  // Averaged gradient = (1+2+3)/3 = 2 for every element.
  const Tensor& agg = server_->AggregatedGrad(0);
  for (std::size_t i = 0; i < agg.size(); ++i) EXPECT_FLOAT_EQ(agg[i], 2.0f);
}

TEST_F(PsLossless, WorkersTrackGlobalModelExactly) {
  util::Rng rng(9);
  for (int step = 0; step < 5; ++step) {
    for (auto& wm : worker_models_) {
      for (auto& p : wm.Params()) {
        tensor::FillNormal(*p.grad, rng, 0.0f, 1.0f);
      }
    }
    OneStep(0.1f);
  }
  // With the lossless codec, every worker's parameters equal the global's.
  auto global_params = global_.Params();
  for (auto& wm : worker_models_) {
    auto wp = wm.Params();
    for (std::size_t i = 0; i < wp.size(); ++i) {
      EXPECT_LT(tensor::MaxAbsDiff(*wp[i].value, *global_params[i].value),
                1e-6f)
          << wp[i].name;
    }
  }
}

TEST_F(PsLossless, MatchesCentralizedMomentumSgd) {
  // Distributed training with identical per-worker gradients must equal a
  // single-node momentum-SGD trajectory on the averaged gradient.
  auto reference = train::BuildMlp(TinySpec(), 7);
  nn::MomentumSgd ref_sgd({0.9f, 0.0f});
  util::Rng rng(10);
  for (int step = 0; step < 4; ++step) {
    // Same gradient everywhere.
    auto ref_params = reference.Params();
    std::vector<Tensor> grads;
    for (auto& p : ref_params) {
      Tensor g(p.grad->shape());
      tensor::FillNormal(g, rng, 0.0f, 1.0f);
      grads.push_back(g);
    }
    for (std::size_t i = 0; i < ref_params.size(); ++i) {
      *ref_params[i].grad = grads[i];
    }
    for (auto& wm : worker_models_) {
      auto wp = wm.Params();
      for (std::size_t i = 0; i < wp.size(); ++i) *wp[i].grad = grads[i];
    }
    ref_sgd.ApplyGradients(ref_params, 0.05f);
    OneStep(0.05f);
  }
  auto ref_params = reference.Params();
  auto glob_params = global_.Params();
  for (std::size_t i = 0; i < ref_params.size(); ++i) {
    EXPECT_LT(tensor::MaxAbsDiff(*ref_params[i].value, *glob_params[i].value),
              1e-5f)
        << ref_params[i].name;
  }
}

TEST_F(PsLossless, PullPayloadSharedAcrossWorkers) {
  FillGrads(worker_models_[0], 0.5f);
  FillGrads(worker_models_[1], 0.5f);
  FillGrads(worker_models_[2], 0.5f);
  OneStep(0.1f);
  // All workers consumed the same payload; their models are identical.
  auto p0 = worker_models_[0].Params();
  auto p1 = worker_models_[1].Params();
  for (std::size_t i = 0; i < p0.size(); ++i) {
    EXPECT_EQ(tensor::MaxAbsDiff(*p0[i].value, *p1[i].value), 0.0f);
  }
}

// ---------- Lossy codec: workers still converge to the global model ----------

TEST(PsLossy, ThreeLCPullsTrackGlobalModelWithinBound) {
  auto global = train::BuildMlp(TinySpec(), 3);
  auto plan = TensorPlan::FromParams(global.Params(), 8);
  auto codec = Codec(CodecConfig::ThreeLC(1.0f));
  ParameterServer server(global, plan, codec, {0.9f, 0.0f});
  auto worker_model = train::BuildMlp(TinySpec(), 3);
  worker_model.CopyParamsFrom(global);
  Worker worker(0, worker_model, plan, codec);

  util::Rng rng(11);
  for (int step = 0; step < 30; ++step) {
    for (auto& p : worker_model.Params()) {
      tensor::FillNormal(*p.grad, rng, 0.0f, 0.5f);
    }
    server.BeginStep();
    util::ByteBuffer buf;
    for (std::size_t t = 0; t < plan.size(); ++t) worker.EncodePush(t, buf);
    util::ByteReader reader(buf);
    for (std::size_t t = 0; t < plan.size(); ++t) server.ReceivePush(t, reader);
    server.UpdateAndPreparePulls(0.05f, 1);
    for (std::size_t t = 0; t < plan.size(); ++t) {
      util::ByteReader pull(server.PullPayload(t));
      worker.ApplyPull(t, pull);
    }
  }
  // The pull codec's error accumulation keeps the worker's view within the
  // codec's per-step error bound of the global model (it does not drift).
  auto gp = global.Params();
  auto wp = worker_model.Params();
  for (std::size_t i = 0; i < gp.size(); ++i) {
    const float scale = tensor::MaxAbs(*gp[i].value) + 1e-3f;
    EXPECT_LT(tensor::MaxAbsDiff(*gp[i].value, *wp[i].value), 0.5f * scale)
        << gp[i].name;
  }
}

TEST(PsLossy, PushErrorAccumulationLivesPerWorker) {
  // Two workers pushing different gradients through 3LC must not share
  // error state: their encoded payloads differ.
  auto global = train::BuildMlp(TinySpec(), 5);
  auto plan = TensorPlan::FromParams(global.Params(), 8);
  auto codec = Codec(CodecConfig::ThreeLC(1.0f));
  auto m1 = train::BuildMlp(TinySpec(), 5);
  auto m2 = train::BuildMlp(TinySpec(), 5);
  Worker w1(0, m1, plan, codec);
  Worker w2(1, m2, plan, codec);
  util::Rng rng(12);
  for (auto& p : m1.Params()) tensor::FillNormal(*p.grad, rng, 0.0f, 1.0f);
  for (auto& p : m2.Params()) tensor::FillNormal(*p.grad, rng, 0.0f, 1.0f);
  util::ByteBuffer b1, b2;
  w1.EncodePush(0, b1);
  w2.EncodePush(0, b2);
  EXPECT_FALSE(b1 == b2);
  EXPECT_GT(w1.CodecStateBytes(), 0u);
}

TEST(PsLossy, UncompressedEntriesAreExact) {
  auto global = train::BuildMlp(TinySpec(), 6);
  // min_elems = 20 makes fc1/b (16 elements) a bypass entry.
  auto plan = TensorPlan::FromParams(global.Params(), 20);
  auto codec = Codec(CodecConfig::ThreeLC(1.9f));
  auto wm = train::BuildMlp(TinySpec(), 6);
  Worker worker(0, wm, plan, codec);
  // Find a bypass entry (fc1/b at index 1) and verify raw transmission.
  ASSERT_FALSE(plan.entry(1).compressed);
  auto params = wm.Params();
  params[1].grad->Fill(0.123f);
  util::ByteBuffer buf;
  const std::size_t bytes = worker.EncodePush(1, buf);
  EXPECT_EQ(bytes, params[1].grad->byte_size());
  util::ByteReader reader(buf);
  ParameterServer server(global, plan, codec, {0.0f, 0.0f});
  server.BeginStep();
  server.ReceivePush(1, reader);
  const Tensor& agg = server.AggregatedGrad(1);
  for (std::size_t i = 0; i < agg.size(); ++i) {
    EXPECT_FLOAT_EQ(agg[i], 0.123f);
  }
}

}  // namespace
}  // namespace threelc::ps
