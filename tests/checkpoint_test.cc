// Tests for model checkpointing (save/load round trips and corruption
// handling), plus server-sharding assignment.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "nn/checkpoint.h"
#include "nn/checkpoint_manager.h"
#include "ps/sharding.h"
#include "tensor/tensor_ops.h"
#include "train/model_zoo.h"
#include "util/atomic_file.h"
#include "util/fs.h"
#include "util/rng.h"

namespace threelc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

train::MlpSpec Spec() { return {6, {16, 8}, 3, true}; }

TEST(Checkpoint, RoundTripRestoresForwardOutputs) {
  auto model = train::BuildMlp(Spec(), 1);
  const std::string path = TempPath("ckpt_roundtrip.bin");
  nn::SaveCheckpoint(model, path);

  auto restored = train::BuildMlp(Spec(), 2);  // different init
  nn::LoadCheckpoint(restored, path);

  util::Rng rng(3);
  tensor::Tensor in(tensor::Shape{4, 6});
  tensor::FillNormal(in, rng, 0.0f, 1.0f);
  EXPECT_EQ(tensor::MaxAbsDiff(model.Forward(in, false),
                               restored.Forward(in, false)),
            0.0f);
  std::remove(path.c_str());
}

TEST(Checkpoint, RestoresBatchNormBuffers) {
  auto model = train::BuildMlp(Spec(), 4);
  // Drive the BN running statistics away from their init.
  util::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    tensor::Tensor in(tensor::Shape{32, 6});
    tensor::FillNormal(in, rng, 2.0f, 3.0f);
    model.Forward(in, true);
  }
  const std::string path = TempPath("ckpt_buffers.bin");
  nn::SaveCheckpoint(model, path);
  auto restored = train::BuildMlp(Spec(), 6);
  nn::LoadCheckpoint(restored, path);
  auto orig_buffers = model.Buffers();
  auto rest_buffers = restored.Buffers();
  ASSERT_EQ(orig_buffers.size(), rest_buffers.size());
  for (std::size_t i = 0; i < orig_buffers.size(); ++i) {
    EXPECT_EQ(tensor::MaxAbsDiff(*orig_buffers[i], *rest_buffers[i]), 0.0f);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  auto model = train::BuildMlp(Spec(), 1);
  EXPECT_THROW(nn::LoadCheckpoint(model, TempPath("does_not_exist.bin")),
               std::runtime_error);
}

TEST(Checkpoint, BadMagicThrows) {
  const std::string path = TempPath("ckpt_bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE and some garbage";
  }
  auto model = train::BuildMlp(Spec(), 1);
  EXPECT_THROW(nn::LoadCheckpoint(model, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, ArchitectureMismatchThrows) {
  auto model = train::BuildMlp(Spec(), 1);
  const std::string path = TempPath("ckpt_arch.bin");
  nn::SaveCheckpoint(model, path);
  auto different = train::BuildMlp({6, {32, 8}, 3, true}, 1);
  EXPECT_THROW(nn::LoadCheckpoint(different, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedFileThrows) {
  auto model = train::BuildMlp(Spec(), 1);
  const std::string path = TempPath("ckpt_trunc.bin");
  nn::SaveCheckpoint(model, path);
  // Truncate to half.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_THROW(nn::LoadCheckpoint(model, path), std::runtime_error);
  std::remove(path.c_str());
}

// ---------- v2 checksum trailer ----------

TEST(Checkpoint, ChecksumRoundTripLoads) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string path = TempPath("ckpt_crc_roundtrip.bin");
  nn::SaveCheckpoint(model, path, /*checksum=*/true);
  auto restored = train::BuildMlp(Spec(), 8);
  nn::LoadCheckpoint(restored, path);
  util::Rng rng(9);
  tensor::Tensor in(tensor::Shape{4, 6});
  tensor::FillNormal(in, rng, 0.0f, 1.0f);
  EXPECT_EQ(tensor::MaxAbsDiff(model.Forward(in, false),
                               restored.Forward(in, false)),
            0.0f);
  std::remove(path.c_str());
}

TEST(Checkpoint, ChecksumDetectsFlippedPayloadByte) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string path = TempPath("ckpt_crc_corrupt.bin");
  nn::SaveCheckpoint(model, path, /*checksum=*/true);

  // Flip one byte in the middle of the tensor data region.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  contents[contents.size() / 2] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
  }

  auto restored = train::BuildMlp(Spec(), 8);
  EXPECT_THROW(nn::LoadCheckpoint(restored, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, V1FileWithoutChecksumStillLoads) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string path = TempPath("ckpt_v1_compat.bin");
  nn::SaveCheckpoint(model, path, /*checksum=*/false);
  auto restored = train::BuildMlp(Spec(), 8);
  EXPECT_NO_THROW(nn::LoadCheckpoint(restored, path));
  util::Rng rng(9);
  tensor::Tensor in(tensor::Shape{4, 6});
  tensor::FillNormal(in, rng, 0.0f, 1.0f);
  EXPECT_EQ(tensor::MaxAbsDiff(model.Forward(in, false),
                               restored.Forward(in, false)),
            0.0f);
  std::remove(path.c_str());
}

TEST(Checkpoint, ChecksumFileIsLargerByTrailer) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string with = TempPath("ckpt_with_crc.bin");
  const std::string without = TempPath("ckpt_without_crc.bin");
  nn::SaveCheckpoint(model, with, /*checksum=*/true);
  nn::SaveCheckpoint(model, without, /*checksum=*/false);
  auto size_of = [](const std::string& p) {
    std::ifstream f(p, std::ios::binary | std::ios::ate);
    return static_cast<std::size_t>(f.tellg());
  };
  EXPECT_GT(size_of(with), size_of(without));
  std::remove(with.c_str());
  std::remove(without.c_str());
}

// ---------- v3 training state ----------

nn::TrainState MakeState() {
  nn::TrainState state;
  state.next_step = 41;
  state.codec_state = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
  state.sampler_state = {0x10, 0x20, 0x30};
  return state;
}

TEST(Checkpoint, V3RoundTripRestoresModelAndState) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string path = TempPath("ckpt_v3_roundtrip.bin");
  nn::SaveCheckpointWithState(model, MakeState(), path);

  auto restored = train::BuildMlp(Spec(), 8);
  nn::TrainState state;
  nn::LoadCheckpointState(restored, &state, path);
  EXPECT_EQ(state.next_step, 41u);
  EXPECT_EQ(state.codec_state, MakeState().codec_state);
  EXPECT_EQ(state.sampler_state, MakeState().sampler_state);
  util::Rng rng(9);
  tensor::Tensor in(tensor::Shape{4, 6});
  tensor::FillNormal(in, rng, 0.0f, 1.0f);
  EXPECT_EQ(tensor::MaxAbsDiff(model.Forward(in, false),
                               restored.Forward(in, false)),
            0.0f);
  std::remove(path.c_str());
}

// Plain LoadCheckpoint must accept a v3 file — readers that only want the
// model (evaluation snapshots) skip the training-state section.
TEST(Checkpoint, LoadCheckpointAcceptsV3AndSkipsState) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string path = TempPath("ckpt_v3_model_only.bin");
  nn::SaveCheckpointWithState(model, MakeState(), path);
  auto restored = train::BuildMlp(Spec(), 8);
  EXPECT_NO_THROW(nn::LoadCheckpoint(restored, path));
  util::Rng rng(9);
  tensor::Tensor in(tensor::Shape{4, 6});
  tensor::FillNormal(in, rng, 0.0f, 1.0f);
  EXPECT_EQ(tensor::MaxAbsDiff(model.Forward(in, false),
                               restored.Forward(in, false)),
            0.0f);
  std::remove(path.c_str());
}

// LoadCheckpointState demands the state section: a v2 (model-only) file is
// an error, not silently-zero state.
TEST(Checkpoint, LoadCheckpointStateRejectsV2File) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string path = TempPath("ckpt_v2_no_state.bin");
  nn::SaveCheckpoint(model, path);
  nn::TrainState state;
  EXPECT_THROW(nn::LoadCheckpointState(model, &state, path),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, V3ChecksumDetectsStateCorruption) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string path = TempPath("ckpt_v3_corrupt.bin");
  nn::SaveCheckpointWithState(model, MakeState(), path);
  // Flip a byte near the end of the body — inside the training-state
  // section, before the CRC trailer.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  contents[contents.size() - 7] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
  }
  nn::TrainState state;
  EXPECT_THROW(nn::LoadCheckpointState(model, &state, path),
               std::runtime_error);
  std::remove(path.c_str());
}

// ---------- server checkpoint ("3LCS") ----------

nn::ServerState MakeServerState() {
  nn::ServerState state;
  state.epoch = 3;
  state.next_step = 17;
  state.ps_state = {0xAA, 0xBB, 0xCC, 0x01, 0x02};
  state.evicted = {0, 1, 0};
  state.greeted = {1, 1, 0};
  nn::ServerState::ReplayStep s15;
  s15.step = 15;
  s15.frames = {{0x10, 0x11}, {0x12}};
  nn::ServerState::ReplayStep s16;
  s16.step = 16;
  s16.frames = {{0x20}, {0x21, 0x22, 0x23}};
  state.replay = {s15, s16};
  return state;
}

TEST(ServerCheckpoint, RoundTripRestoresModelAndEveryField) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string path = TempPath("sckpt_roundtrip.bin");
  nn::SaveServerCheckpoint(model, MakeServerState(), path);

  auto restored = train::BuildMlp(Spec(), 8);  // different init
  nn::ServerState state;
  nn::LoadServerCheckpoint(restored, &state, path);

  const nn::ServerState want = MakeServerState();
  EXPECT_EQ(state.epoch, want.epoch);
  EXPECT_EQ(state.next_step, want.next_step);
  EXPECT_EQ(state.ps_state, want.ps_state);
  EXPECT_EQ(state.evicted, want.evicted);
  EXPECT_EQ(state.greeted, want.greeted);
  ASSERT_EQ(state.replay.size(), want.replay.size());
  for (std::size_t i = 0; i < want.replay.size(); ++i) {
    EXPECT_EQ(state.replay[i].step, want.replay[i].step);
    EXPECT_EQ(state.replay[i].frames, want.replay[i].frames);
  }

  util::Rng rng(9);
  tensor::Tensor in(tensor::Shape{4, 6});
  tensor::FillNormal(in, rng, 0.0f, 1.0f);
  EXPECT_EQ(tensor::MaxAbsDiff(model.Forward(in, false),
                               restored.Forward(in, false)),
            0.0f);
  std::remove(path.c_str());
}

TEST(ServerCheckpoint, EveryTruncationIsRejected) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string path = TempPath("sckpt_trunc.bin");
  nn::SaveServerCheckpoint(model, MakeServerState(), path);

  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(contents.size(), 16u);

  // Sweep prefix lengths (stride keeps the test fast; the endpoints and
  // everything in between must all fail the CRC or hit a hard underflow).
  for (std::size_t len = 0; len < contents.size();
       len += (contents.size() / 97) + 1) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(len));
    out.close();
    auto victim = train::BuildMlp(Spec(), 8);
    nn::ServerState state;
    EXPECT_THROW(nn::LoadServerCheckpoint(victim, &state, path),
                 std::runtime_error)
        << "truncated to " << len << " of " << contents.size() << " bytes";
  }
  std::remove(path.c_str());
}

TEST(ServerCheckpoint, FlippedByteIsRejected) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string path = TempPath("sckpt_flip.bin");
  nn::SaveServerCheckpoint(model, MakeServerState(), path);
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  for (const std::size_t pos :
       {contents.size() / 4, contents.size() / 2, contents.size() - 5}) {
    std::string corrupt = contents;
    corrupt[pos] ^= 0x08;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    auto victim = train::BuildMlp(Spec(), 8);
    nn::ServerState state;
    EXPECT_THROW(nn::LoadServerCheckpoint(victim, &state, path),
                 std::runtime_error)
        << "flip at byte " << pos;
  }
  std::remove(path.c_str());
}

// The two record types must not be confusable: a worker checkpoint is not
// a server checkpoint and vice versa.
TEST(ServerCheckpoint, MagicSeparatesWorkerAndServerRecords) {
  auto model = train::BuildMlp(Spec(), 7);
  const std::string worker_path = TempPath("sckpt_worker_rec.bin");
  const std::string server_path = TempPath("sckpt_server_rec.bin");
  nn::SaveCheckpoint(model, worker_path);
  nn::SaveServerCheckpoint(model, MakeServerState(), server_path);

  nn::ServerState state;
  EXPECT_THROW(nn::LoadServerCheckpoint(model, &state, worker_path),
               std::runtime_error);
  EXPECT_THROW(nn::LoadCheckpoint(model, server_path), std::runtime_error);
  std::remove(worker_path.c_str());
  std::remove(server_path.c_str());
}

// ---------- 3LCZ compressed container ----------

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A model whose tensor bytes are trivially compressible, so every codec
// shrinks the blob and the save is guaranteed to emit the container (the
// skip-if-incompressible escape never fires).
nn::Model CompressibleModel(int seed) {
  auto model = train::BuildMlp(Spec(), seed);
  float v = 0.25f;
  for (auto& p : model.Params()) {
    tensor::Tensor* t = p.value;
    for (std::int64_t i = 0; i < t->num_elements(); ++i) t->data()[i] = v;
    v += 0.125f;  // distinct per tensor so a swapped load would show
  }
  return model;
}

bool HasContainerMagic(const std::string& bytes) {
  return bytes.size() >= 4 && bytes.compare(0, 4, "3LCZ") == 0;
}

// Container header layout (checkpoint.h): magic[4] | u32 version |
// u8 codec_id | u64 raw_size | u32 raw_crc32c | u32 comp_size.
constexpr std::size_t kCodecIdOffset = 8;
constexpr std::size_t kRawSizeOffset = 9;
constexpr std::size_t kRawCrcOffset = 17;

TEST(CompressedCheckpoint, RoundTripEveryCodecBitwiseExact) {
  auto model = CompressibleModel(7);
  const std::string bare = TempPath("zckpt_bare.bin");
  nn::SaveCheckpoint(model, bare);
  const std::size_t bare_size = ReadFileBytes(bare).size();

  for (const char* codec : {"lz", "rans", "lz+rans"}) {
    const std::string path = TempPath("zckpt_roundtrip.bin");
    nn::SaveCheckpoint(model, path, /*checksum=*/true, codec);
    const std::string bytes = ReadFileBytes(path);
    EXPECT_TRUE(HasContainerMagic(bytes)) << codec;
    EXPECT_LT(bytes.size(), bare_size) << codec;

    auto restored = train::BuildMlp(Spec(), 8);
    nn::LoadCheckpoint(restored, path);
    util::Rng rng(9);
    tensor::Tensor in(tensor::Shape{4, 6});
    tensor::FillNormal(in, rng, 0.0f, 1.0f);
    EXPECT_EQ(tensor::MaxAbsDiff(model.Forward(in, false),
                                 restored.Forward(in, false)),
              0.0f)
        << codec;
    std::remove(path.c_str());
  }
  std::remove(bare.c_str());
}

TEST(CompressedCheckpoint, StoreCodecWritesBareFile) {
  auto model = CompressibleModel(7);
  const std::string path = TempPath("zckpt_store.bin");
  nn::SaveCheckpoint(model, path, /*checksum=*/true, "store");
  EXPECT_FALSE(HasContainerMagic(ReadFileBytes(path)));
  auto restored = train::BuildMlp(Spec(), 8);
  EXPECT_NO_THROW(nn::LoadCheckpoint(restored, path));
  std::remove(path.c_str());
}

TEST(CompressedCheckpoint, UnknownCodecNameThrowsOnSave) {
  auto model = CompressibleModel(7);
  EXPECT_THROW(nn::SaveCheckpoint(model, TempPath("zckpt_unknown.bin"),
                                  /*checksum=*/true, "zstd"),
               std::runtime_error);
}

TEST(CompressedCheckpoint, V3StateAndServerRecordsRoundTrip) {
  auto model = CompressibleModel(7);
  const std::string wpath = TempPath("zckpt_v3.bin");
  nn::SaveCheckpointWithState(model, MakeState(), wpath, "lz+rans");
  EXPECT_TRUE(HasContainerMagic(ReadFileBytes(wpath)));
  auto restored = train::BuildMlp(Spec(), 8);
  nn::TrainState state;
  nn::LoadCheckpointState(restored, &state, wpath);
  EXPECT_EQ(state.next_step, 41u);
  EXPECT_EQ(state.codec_state, MakeState().codec_state);

  const std::string spath = TempPath("zsckpt.bin");
  nn::SaveServerCheckpoint(model, MakeServerState(), spath, "lz+rans");
  EXPECT_TRUE(HasContainerMagic(ReadFileBytes(spath)));
  auto restored2 = train::BuildMlp(Spec(), 9);
  nn::ServerState sstate;
  nn::LoadServerCheckpoint(restored2, &sstate, spath);
  EXPECT_EQ(sstate.epoch, MakeServerState().epoch);
  EXPECT_EQ(sstate.replay.size(), MakeServerState().replay.size());

  util::Rng rng(9);
  tensor::Tensor in(tensor::Shape{4, 6});
  tensor::FillNormal(in, rng, 0.0f, 1.0f);
  EXPECT_EQ(tensor::MaxAbsDiff(restored.Forward(in, false),
                               restored2.Forward(in, false)),
            0.0f);
  std::remove(wpath.c_str());
  std::remove(spath.c_str());
}

// The loader must cross-check the declared raw size against the decoded
// length independently of the CRC: a tampered size field fails even
// though the compressed payload itself is intact.
TEST(CompressedCheckpoint, DeclaredSizeMismatchIsRejected) {
  auto model = CompressibleModel(7);
  const std::string path = TempPath("zckpt_size.bin");
  nn::SaveCheckpoint(model, path, /*checksum=*/true, "lz+rans");
  std::string bytes = ReadFileBytes(path);
  ASSERT_TRUE(HasContainerMagic(bytes));
  bytes[kRawSizeOffset] ^= 0x01;  // raw_size off by one
  WriteFileBytes(path, bytes);
  auto victim = train::BuildMlp(Spec(), 8);
  EXPECT_THROW(nn::LoadCheckpoint(victim, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CompressedCheckpoint, DeclaredCrcMismatchIsRejected) {
  auto model = CompressibleModel(7);
  const std::string path = TempPath("zckpt_crc.bin");
  nn::SaveCheckpoint(model, path, /*checksum=*/true, "lz+rans");
  std::string bytes = ReadFileBytes(path);
  ASSERT_TRUE(HasContainerMagic(bytes));
  bytes[kRawCrcOffset] ^= 0x01;  // container CRC no longer matches
  WriteFileBytes(path, bytes);
  auto victim = train::BuildMlp(Spec(), 8);
  EXPECT_THROW(nn::LoadCheckpoint(victim, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CompressedCheckpoint, UnknownCodecIdIsRejected) {
  auto model = CompressibleModel(7);
  const std::string path = TempPath("zckpt_badid.bin");
  nn::SaveCheckpoint(model, path, /*checksum=*/true, "lz+rans");
  std::string bytes = ReadFileBytes(path);
  ASSERT_TRUE(HasContainerMagic(bytes));
  bytes[kCodecIdOffset] = static_cast<char>(0xEE);
  WriteFileBytes(path, bytes);
  auto victim = train::BuildMlp(Spec(), 8);
  EXPECT_THROW(nn::LoadCheckpoint(victim, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CompressedCheckpoint, ImplausibleRawSizeIsRejected) {
  auto model = CompressibleModel(7);
  const std::string path = TempPath("zckpt_hugesize.bin");
  nn::SaveCheckpoint(model, path, /*checksum=*/true, "lz+rans");
  std::string bytes = ReadFileBytes(path);
  ASSERT_TRUE(HasContainerMagic(bytes));
  for (int i = 0; i < 8; ++i) {
    bytes[kRawSizeOffset + i] = static_cast<char>(0xFF);
  }
  WriteFileBytes(path, bytes);
  auto victim = train::BuildMlp(Spec(), 8);
  EXPECT_THROW(nn::LoadCheckpoint(victim, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CompressedCheckpoint, TruncationSweepIsRejected) {
  auto model = CompressibleModel(7);
  const std::string path = TempPath("zckpt_trunc.bin");
  nn::SaveServerCheckpoint(model, MakeServerState(), path, "lz+rans");
  const std::string contents = ReadFileBytes(path);
  ASSERT_TRUE(HasContainerMagic(contents));
  for (std::size_t len = 0; len < contents.size();
       len += (contents.size() / 97) + 1) {
    WriteFileBytes(path, contents.substr(0, len));
    auto victim = train::BuildMlp(Spec(), 8);
    nn::ServerState state;
    EXPECT_THROW(nn::LoadServerCheckpoint(victim, &state, path),
                 std::runtime_error)
        << "truncated to " << len << " of " << contents.size() << " bytes";
  }
  std::remove(path.c_str());
}

TEST(CompressedCheckpoint, TrailingGarbageIsRejected) {
  auto model = CompressibleModel(7);
  const std::string path = TempPath("zckpt_trailing.bin");
  nn::SaveCheckpoint(model, path, /*checksum=*/true, "lz+rans");
  std::string bytes = ReadFileBytes(path);
  ASSERT_TRUE(HasContainerMagic(bytes));
  bytes += "extra";
  WriteFileBytes(path, bytes);
  auto victim = train::BuildMlp(Spec(), 8);
  EXPECT_THROW(nn::LoadCheckpoint(victim, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CompressedCheckpoint, CompressedPayloadFlipIsRejected) {
  auto model = CompressibleModel(7);
  const std::string path = TempPath("zckpt_payload_flip.bin");
  nn::SaveCheckpoint(model, path, /*checksum=*/true, "lz+rans");
  std::string bytes = ReadFileBytes(path);
  ASSERT_TRUE(HasContainerMagic(bytes));
  bytes[bytes.size() / 2] ^= 0x04;
  WriteFileBytes(path, bytes);
  auto victim = train::BuildMlp(Spec(), 8);
  EXPECT_THROW(nn::LoadCheckpoint(victim, path), std::runtime_error);
  std::remove(path.c_str());
}

// ---------- atomic write-temp + fsync + rename ----------

TEST(AtomicFile, CommitLeavesContentsAndNoTempBehind) {
  const std::string path = TempPath("atomic_commit.bin");
  std::string temp_path;
  {
    util::AtomicFileWriter w(path);
    temp_path = w.temp_path();
    // The file under construction lives at the temp sibling, not `path`.
    EXPECT_TRUE(std::ifstream(temp_path).good());
    EXPECT_FALSE(std::ifstream(path).good());
    w.Write("hello", 5);
    w.Commit();
  }
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "hello");
  EXPECT_FALSE(std::ifstream(temp_path).good()) << "temp file leaked";
  std::remove(path.c_str());
}

TEST(AtomicFile, AbortRemovesTempAndPreservesPrevious) {
  const std::string path = TempPath("atomic_abort.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "previous";
  }
  std::string temp_path;
  {
    util::AtomicFileWriter w(path);
    temp_path = w.temp_path();
    w.Write("partial", 7);
    // Destroyed without Commit: exception-unwind path.
  }
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "previous");
  EXPECT_FALSE(std::ifstream(temp_path).good()) << "temp file leaked";
  std::remove(path.c_str());
}

TEST(AtomicFile, StaleTempFromEarlierCrashIsOverwritten) {
  const std::string path = TempPath("atomic_stale.bin");
  // Learn this process's temp-sibling name, then plant garbage there as if
  // a previous attempt died mid-write.
  std::string temp_path;
  {
    util::AtomicFileWriter probe(path);
    temp_path = probe.temp_path();
  }
  {
    std::ofstream out(temp_path, std::ios::binary);
    out << "stale garbage from a crashed writer";
  }
  auto model = train::BuildMlp(Spec(), 7);
  nn::SaveServerCheckpoint(model, MakeServerState(), path);
  auto restored = train::BuildMlp(Spec(), 8);
  nn::ServerState state;
  EXPECT_NO_THROW(nn::LoadServerCheckpoint(restored, &state, path));
  EXPECT_EQ(state.epoch, 3u);
  EXPECT_FALSE(std::ifstream(temp_path).good()) << "temp file leaked";
  std::remove(path.c_str());
}

// ---------- Sharding ----------

TEST(Sharding, SingleShardTakesEverything) {
  auto model = train::BuildMlp(Spec(), 1);
  auto plan = ps::TensorPlan::FromParams(model.Params(), 1);
  auto shards = ps::ShardPlan(plan, 1);
  EXPECT_EQ(shards.num_shards(), 1);
  EXPECT_EQ(shards.shard_elements[0], plan.TotalElements());
  EXPECT_NEAR(shards.Imbalance(), 1.0, 1e-9);
}

TEST(Sharding, AssignsEveryTensorExactlyOnce) {
  auto model = train::BuildMlp({64, {128, 64, 32}, 10, true}, 2);
  auto plan = ps::TensorPlan::FromParams(model.Params(), 1);
  auto shards = ps::ShardPlan(plan, 3);
  ASSERT_EQ(shards.shard_of.size(), plan.size());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_GE(shards.shard_of[i], 0);
    EXPECT_LT(shards.shard_of[i], 3);
    total += plan.entry(i).shape.num_elements();
  }
  std::int64_t shard_total = 0;
  for (auto e : shards.shard_elements) shard_total += e;
  EXPECT_EQ(shard_total, total);
}

TEST(Sharding, LptBalancesLoad) {
  auto model = train::BuildMlp({64, {128, 64, 32}, 10, true}, 2);
  auto plan = ps::TensorPlan::FromParams(model.Params(), 1);
  auto shards = ps::ShardPlan(plan, 2);
  // LPT guarantees makespan within 4/3 of optimal; optimal >= ideal.
  EXPECT_LT(shards.Imbalance(), 4.0 / 3.0 + 1e-9);
}

TEST(Sharding, MoreShardsNeverIncreaseBottleneck) {
  auto model = train::BuildMlp({64, {128, 64, 32}, 10, true}, 2);
  auto plan = ps::TensorPlan::FromParams(model.Params(), 1);
  std::int64_t prev = plan.TotalElements() + 1;
  for (int shards = 1; shards <= 4; ++shards) {
    const auto assignment = ps::ShardPlan(plan, shards);
    EXPECT_LE(assignment.MaxShardElements(), prev);
    prev = assignment.MaxShardElements();
  }
}

TEST(Sharding, MoreShardsThanTensors) {
  auto model = train::BuildMlp(Spec(), 1);
  auto plan = ps::TensorPlan::FromParams(model.Params(), 1);
  auto shards = ps::ShardPlan(plan, 100);
  std::int64_t largest = 0;
  for (const auto& e : plan.entries()) {
    largest = std::max(largest, e.shape.num_elements());
  }
  EXPECT_EQ(shards.MaxShardElements(), largest);  // largest tensor alone
}

// ---------- CheckpointManager: generations + last-good fallback ----------

// A state whose epoch encodes which Save() produced it, so fallback tests
// can tell generations apart after a load.
nn::ServerState NumberedState(std::uint64_t n) {
  nn::ServerState state = MakeServerState();
  state.epoch = n;
  state.next_step = static_cast<std::int64_t>(n) + 100;
  return state;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void SpitFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

void RemoveGenerations(const std::string& path) {
  std::remove(path.c_str());
  for (int g = 0; g < 32; ++g) {
    std::remove((path + ".g" + std::to_string(g)).c_str());
  }
}

TEST(CheckpointManager, SaveNumbersGenerationsAndPrunesToRetention) {
  const std::string path = TempPath("mgr_retention.sckpt");
  RemoveGenerations(path);
  auto model = train::BuildMlp(Spec(), 7);
  nn::CheckpointManager mgr({path, /*retain=*/2});
  for (std::uint64_t n = 0; n < 5; ++n) mgr.Save(model, NumberedState(n));
  EXPECT_EQ(mgr.generation_count(), 2);
  EXPECT_EQ(mgr.next_generation(), 5u);
  // g3 and g4 survive; g0..g2 were pruned.
  for (int g = 0; g < 3; ++g) {
    EXPECT_TRUE(SlurpFile(mgr.GenerationPath(g)).empty()) << g;
  }
  for (int g = 3; g < 5; ++g) {
    EXPECT_FALSE(SlurpFile(mgr.GenerationPath(g)).empty()) << g;
  }
  // The newest generation is what Load returns.
  auto restored = train::BuildMlp(Spec(), 8);
  nn::ServerState state;
  std::string error;
  ASSERT_TRUE(mgr.Load(restored, &state, &error)) << error;
  EXPECT_EQ(state.epoch, 4u);
  EXPECT_EQ(mgr.fallbacks(), 0);
  EXPECT_EQ(mgr.loaded_path(), mgr.GenerationPath(4));
  RemoveGenerations(path);
}

TEST(CheckpointManager, NumberingResumesAfterRescanNeverReuses) {
  const std::string path = TempPath("mgr_renumber.sckpt");
  RemoveGenerations(path);
  auto model = train::BuildMlp(Spec(), 7);
  {
    nn::CheckpointManager mgr({path, /*retain=*/2});
    for (std::uint64_t n = 0; n < 3; ++n) mgr.Save(model, NumberedState(n));
  }
  // A fresh incarnation scans disk (g1, g2 remain) and continues at g3.
  nn::CheckpointManager mgr({path, /*retain=*/2});
  mgr.ScanAndSweep();
  EXPECT_EQ(mgr.next_generation(), 3u);
  mgr.Save(model, NumberedState(3));
  EXPECT_FALSE(SlurpFile(mgr.GenerationPath(3)).empty());
  RemoveGenerations(path);
}

// The fallback matrix of the issue: corrupt the newest generation in each
// byte-region class (magic, header, payload, trailer) and truncate it;
// every variant must fall back to the older intact generation.
TEST(CheckpointManager, FallbackMatrixCorruptNewestEveryRegion) {
  const std::string path = TempPath("mgr_matrix.sckpt");
  RemoveGenerations(path);
  auto model = train::BuildMlp(Spec(), 7);
  nn::CheckpointManager mgr({path, /*retain=*/2});
  mgr.Save(model, NumberedState(0));
  mgr.Save(model, NumberedState(1));
  const std::string newest = mgr.GenerationPath(1);
  const std::string pristine = SlurpFile(newest);
  ASSERT_GT(pristine.size(), 32u);

  struct Corruption {
    const char* name;
    std::size_t flip_at;  // == npos for truncation
    std::size_t truncate_to;
  };
  const std::size_t kFlip = std::string::npos;
  const std::vector<Corruption> matrix = {
      {"magic", 0, kFlip},                        // "3LCS" tag
      {"header", 6, kFlip},                       // version/count region
      {"payload", pristine.size() / 2, kFlip},    // tensor bytes
      {"trailer", pristine.size() - 2, kFlip},    // CRC trailer
      {"truncated-half", kFlip, pristine.size() / 2},
      {"truncated-trailer", kFlip, pristine.size() - 3},
      {"empty", kFlip, 0},
  };
  for (const auto& c : matrix) {
    if (c.flip_at != kFlip) {
      std::string corrupt = pristine;
      corrupt[c.flip_at] ^= 0x04;
      SpitFile(newest, corrupt);
    } else {
      SpitFile(newest, pristine.substr(0, c.truncate_to));
    }
    nn::CheckpointManager victim({path, /*retain=*/2});
    auto restored = train::BuildMlp(Spec(), 8);
    nn::ServerState state;
    std::string error;
    ASSERT_TRUE(victim.Load(restored, &state, &error))
        << c.name << ": " << error;
    EXPECT_EQ(state.epoch, 0u) << c.name;  // the older generation's state
    EXPECT_EQ(victim.fallbacks(), 1) << c.name;
    EXPECT_EQ(victim.loaded_path(), victim.GenerationPath(0)) << c.name;
    ASSERT_EQ(victim.fallback_log().size(), 1u) << c.name;
    EXPECT_NE(victim.fallback_log()[0].find("unusable"), std::string::npos)
        << victim.fallback_log()[0];
  }
  RemoveGenerations(path);
}

TEST(CheckpointManager, AllGenerationsBadIsACleanError) {
  const std::string path = TempPath("mgr_allbad.sckpt");
  RemoveGenerations(path);
  auto model = train::BuildMlp(Spec(), 7);
  nn::CheckpointManager mgr({path, /*retain=*/2});
  mgr.Save(model, NumberedState(0));
  mgr.Save(model, NumberedState(1));
  for (int g = 0; g < 2; ++g) {
    std::string bytes = SlurpFile(mgr.GenerationPath(g));
    bytes[bytes.size() / 2] ^= 0x10;
    SpitFile(mgr.GenerationPath(g), bytes);
  }
  nn::CheckpointManager victim({path, /*retain=*/2});
  auto restored = train::BuildMlp(Spec(), 8);
  nn::ServerState state;
  std::string error;
  EXPECT_FALSE(victim.Load(restored, &state, &error));
  EXPECT_NE(error.find("no usable checkpoint"), std::string::npos) << error;
  EXPECT_EQ(victim.fallbacks(), 2);
  RemoveGenerations(path);
}

TEST(CheckpointManager, NoFilesAtAllIsACleanError) {
  const std::string path = TempPath("mgr_nothing.sckpt");
  RemoveGenerations(path);
  nn::CheckpointManager mgr({path, /*retain=*/2});
  auto model = train::BuildMlp(Spec(), 8);
  nn::ServerState state;
  std::string error;
  EXPECT_FALSE(mgr.Load(model, &state, &error));
  EXPECT_NE(error.find("no usable checkpoint"), std::string::npos) << error;
}

// Checkpoints written before generations existed live at the bare path;
// Load must still find them after every generation file is exhausted.
TEST(CheckpointManager, LegacyBarePathIsTheFinalFallback) {
  const std::string path = TempPath("mgr_legacy.sckpt");
  RemoveGenerations(path);
  auto model = train::BuildMlp(Spec(), 7);
  nn::SaveServerCheckpoint(model, NumberedState(41), path);
  nn::CheckpointManager mgr({path, /*retain=*/2});
  auto restored = train::BuildMlp(Spec(), 8);
  nn::ServerState state;
  std::string error;
  ASSERT_TRUE(mgr.Load(restored, &state, &error)) << error;
  EXPECT_EQ(state.epoch, 41u);
  EXPECT_EQ(mgr.loaded_path(), path);
  RemoveGenerations(path);
}

TEST(CheckpointManager, SaveThrowsOnInjectedDiskFull) {
  const std::string path = TempPath("mgr_enospc.sckpt");
  RemoveGenerations(path);
  auto model = train::BuildMlp(Spec(), 7);
  util::FaultFs fault(util::Fs::Real(), /*seed=*/5);
  std::string spec_error;
  ASSERT_TRUE(fault.AddRulesFromSpec("enospc:write@any#*", &spec_error))
      << spec_error;
  nn::CheckpointManager::Options options;
  options.path = path;
  options.fs = &fault;
  nn::CheckpointManager mgr(options);
  EXPECT_THROW(mgr.Save(model, NumberedState(0)), std::runtime_error);
  EXPECT_GT(fault.faults_injected(), 0u);
  // The failed generation number is not consumed: a retry (now that the
  // "disk" has space again) lands at the same g0.
  EXPECT_EQ(mgr.next_generation(), 0u);
  util::FaultFs clean(util::Fs::Real(), /*seed=*/5);
  nn::CheckpointManager::Options retry_options;
  retry_options.path = path;
  retry_options.fs = &clean;
  nn::CheckpointManager retry(retry_options);
  retry.Save(model, NumberedState(0));
  EXPECT_FALSE(SlurpFile(retry.GenerationPath(0)).empty());
  RemoveGenerations(path);
}

}  // namespace
}  // namespace threelc
