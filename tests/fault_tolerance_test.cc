// Fault-tolerance tests for the TCP distributed runtime: a worker killed
// at an arbitrary step and restarted from its crash checkpoint (model +
// error-accumulation buffers + sampler cursor + step counter) must REJOIN
// and leave the final model bitwise identical to a fault-free run, for
// both the float32 and 3LC codecs; injected connection faults must be
// survived via reconnect + pull replay; grace-window expiry must evict the
// dead worker and finish degraded on the survivors; and the deterministic
// FaultInjector must produce identical schedules from identical seeds.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compress/factory.h"
#include "data/synthetic.h"
#include "nn/checkpoint.h"
#include "ps/plan.h"
#include "ps/server.h"
#include "ps/worker.h"
#include "rpc/fault.h"
#include "rpc/runtime.h"
#include "rpc/transport.h"
#include "train/experiment.h"
#include "train/model_zoo.h"
#include "train/trainer.h"
#include "util/byte_buffer.h"
#include "util/rng.h"

namespace threelc::rpc {
namespace {

struct TestSetup {
  train::ExperimentConfig config;
  data::SyntheticData data;
  // Second-stage lossless block codec; also wraps crash checkpoints so
  // resume paths exercise the compressed container.
  std::string block_codec = "store";
};

TestSetup MakeTestSetup(int num_workers, std::int64_t steps,
                        const compress::CodecConfig& codec) {
  TestSetup setup;
  setup.config = train::SmallExperiment();
  train::TrainerConfig& tc = setup.config.trainer;
  tc.num_workers = num_workers;
  tc.total_steps = steps;
  tc.batch_size = 16;
  tc.eval_every = 0;
  tc.codec = codec;
  setup.data = data::MakeTeacherDataset(setup.config.data);
  return setup;
}

bool ModelsBitwiseEqual(nn::Model& a, nn::Model& b) {
  auto pa = a.Params(), pb = b.Params();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].value->byte_size() != pb[i].value->byte_size() ||
        std::memcmp(pa[i].value->data(), pb[i].value->data(),
                    pa[i].value->byte_size()) != 0) {
      return false;
    }
  }
  auto ba = a.Buffers(), bb = b.Buffers();
  if (ba.size() != bb.size()) return false;
  for (std::size_t i = 0; i < ba.size(); ++i) {
    if (ba[i]->byte_size() != bb[i]->byte_size() ||
        std::memcmp(ba[i]->data(), bb[i]->data(), ba[i]->byte_size()) != 0) {
      return false;
    }
  }
  return true;
}

struct WorkerChaos {
  std::int64_t exit_after_step = -1;
  std::string checkpoint_path;
  bool rejoin = false;
  int max_reconnects = 0;
  FaultInjector* fault = nullptr;
  int lease_ms = 0;
  int heartbeat_ms = 0;
};

struct WorkerResult {
  bool ok = false;
  bool simulated_exit = false;
  std::size_t reconnects = 0;
  std::string error;
};

// One worker lifetime on the calling thread, mirroring
// examples/distributed_training.cpp: with chaos.rejoin it restores the
// full training state from the crash checkpoint before reconnecting.
WorkerResult RunOneWorker(const TestSetup& setup, int worker_id, int port,
                          const WorkerChaos& chaos) {
  WorkerResult result;
  const train::TrainerConfig& tc = setup.config.trainer;
  nn::Model model =
      train::BuildMlp(setup.config.model, setup.config.model_seed);

  nn::TrainState resume;
  if (chaos.rejoin) {
    nn::LoadCheckpointState(model, &resume, chaos.checkpoint_path);
  }

  const ps::TensorPlan plan =
      ps::TensorPlan::FromParams(model.Params(), tc.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(tc.codec));
  ps::Worker ps_worker(worker_id, model, plan, codec);

  util::Rng seeder(tc.seed);
  util::Rng rng = seeder.Fork();
  for (int i = 0; i < worker_id; ++i) rng = seeder.Fork();
  data::Sampler sampler(setup.data.train, rng, tc.augment_noise);

  if (chaos.rejoin) {
    util::ByteReader codec_reader(util::ByteSpan(resume.codec_state.data(),
                                                 resume.codec_state.size()));
    ps_worker.LoadCodecState(codec_reader);
    util::ByteReader sampler_reader(util::ByteSpan(
        resume.sampler_state.data(), resume.sampler_state.size()));
    sampler.LoadState(sampler_reader);
  }

  RpcWorkerConfig wc;
  wc.port = port;
  wc.worker_id = worker_id;
  wc.batch_size = tc.batch_size;
  wc.handshake_timeout_ms = 10000;
  wc.pull_timeout_ms = 20000;
  wc.io_timeout_ms = 10000;
  wc.retry.max_attempts = 5;
  wc.retry.initial_backoff_ms = 10;
  wc.start_step =
      chaos.rejoin ? static_cast<std::int64_t>(resume.next_step) : 0;
  wc.rejoin = chaos.rejoin;
  wc.max_reconnects = chaos.max_reconnects;
  wc.exit_after_step = chaos.exit_after_step;
  wc.exit_checkpoint_path = chaos.checkpoint_path;
  wc.fault = chaos.fault;
  wc.block_codec = setup.block_codec;
  wc.lease_ms = chaos.lease_ms;
  wc.heartbeat_ms = chaos.heartbeat_ms;
  RpcWorker worker(wc, ps_worker, plan, codec->name(), std::move(sampler));
  result.ok = worker.Run();
  result.simulated_exit = worker.simulated_exit();
  result.reconnects = worker.reconnects();
  result.error = worker.error();
  return result;
}

struct ServerHarness {
  std::unique_ptr<nn::Model> model;
  std::unique_ptr<ps::TensorPlan> plan;
  std::shared_ptr<const compress::Compressor> codec;
  std::unique_ptr<ps::ParameterServer> ps;
  std::unique_ptr<RpcServer> server;
};

// Server-side chaos/recovery knobs for MakeServer (mirrors WorkerChaos).
struct ServerChaos {
  int port = 0;  // a resumed server must rebind the port workers retry
  std::string checkpoint_path;
  int checkpoint_every = 1;
  std::int64_t exit_after_step = -1;
  int lease_ms = 0;
  int heartbeat_ms = 0;
};

ServerHarness MakeServer(const TestSetup& setup, int grace_ms,
                         int replay_steps, FaultInjector* fault = nullptr,
                         const ServerChaos& chaos = ServerChaos{}) {
  const train::TrainerConfig& tc = setup.config.trainer;
  ServerHarness h;
  h.model = std::make_unique<nn::Model>(
      train::BuildMlp(setup.config.model, setup.config.model_seed));
  h.plan = std::make_unique<ps::TensorPlan>(
      ps::TensorPlan::FromParams(h.model->Params(), tc.min_compress_elems));
  h.codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(tc.codec));
  h.ps = std::make_unique<ps::ParameterServer>(*h.model, *h.plan, h.codec,
                                               tc.optimizer);
  RpcServerConfig sc;
  sc.port = chaos.port;
  sc.num_workers = tc.num_workers;
  sc.total_steps = tc.total_steps;
  sc.lr_max = tc.lr_max;
  sc.lr_min = tc.lr_min;
  sc.handshake_timeout_ms = 10000;
  sc.step_timeout_ms = 20000;
  sc.shutdown_timeout_ms = 10000;
  sc.grace_ms = grace_ms;
  sc.replay_steps = replay_steps;
  sc.checkpoint_path = chaos.checkpoint_path;
  sc.checkpoint_every = chaos.checkpoint_every;
  sc.exit_after_step = chaos.exit_after_step;
  sc.fault = fault;
  sc.block_codec = setup.block_codec;
  sc.lease_ms = chaos.lease_ms;
  sc.heartbeat_ms = chaos.heartbeat_ms;
  h.server = std::make_unique<RpcServer>(sc, *h.ps, h.codec->name());
  return h;
}

std::unique_ptr<nn::Model> RunInProcessReference(const TestSetup& setup) {
  const train::MlpSpec spec = setup.config.model;
  const std::uint64_t model_seed = setup.config.model_seed;
  train::DistributedTrainer trainer(
      setup.config.trainer,
      [spec, model_seed] { return train::BuildMlp(spec, model_seed); },
      setup.data.train, setup.data.test);
  trainer.Run();
  auto model = std::make_unique<nn::Model>(train::BuildMlp(spec, model_seed));
  // Copy the trained parameters/buffers out of the trainer.
  auto src = trainer.global_model().Params();
  auto dst = model->Params();
  for (std::size_t i = 0; i < src.size(); ++i) {
    std::memcpy(dst[i].value->data(), src[i].value->data(),
                src[i].value->byte_size());
  }
  auto sb = trainer.global_model().Buffers();
  auto db = model->Buffers();
  for (std::size_t i = 0; i < sb.size(); ++i) {
    std::memcpy(db[i]->data(), sb[i]->data(), sb[i]->byte_size());
  }
  return model;
}

// Kill worker `kill_worker` right after it completes step `kill_step`,
// restart it from its crash checkpoint, and require the final global model
// to be bitwise identical to a fault-free in-process run.
void ExpectKillRejoinParity(const compress::CodecConfig& codec,
                            std::int64_t kill_step,
                            const std::string& block_codec = "store") {
  SCOPED_TRACE("kill_step=" + std::to_string(kill_step));
  constexpr int kWorkers = 2;
  constexpr int kKillWorker = 1;
  TestSetup setup = MakeTestSetup(kWorkers, /*steps=*/6, codec);
  setup.block_codec = block_codec;
  const std::string ckpt =
      ::testing::TempDir() + "/ft_rejoin_" + std::to_string(kill_step) +
      ".ckpt";

  ServerHarness h = MakeServer(setup, /*grace_ms=*/20000,
                               /*replay_steps=*/8);
  std::string error;
  ASSERT_TRUE(h.server->Listen(&error)) << error;

  bool server_ok = false;
  std::thread server_thread([&] { server_ok = h.server->Run(); });

  WorkerResult results[kWorkers];
  std::thread survivor([&] {
    results[0] = RunOneWorker(setup, 0, h.server->port(), WorkerChaos{});
  });
  std::thread victim([&] {
    WorkerChaos first;
    first.exit_after_step = kill_step;
    first.checkpoint_path = ckpt;
    WorkerResult life1 =
        RunOneWorker(setup, kKillWorker, h.server->port(), first);
    ASSERT_TRUE(life1.simulated_exit) << life1.error;
    WorkerChaos second;
    second.rejoin = true;
    second.checkpoint_path = ckpt;
    results[kKillWorker] =
        RunOneWorker(setup, kKillWorker, h.server->port(), second);
  });
  survivor.join();
  victim.join();
  server_thread.join();

  ASSERT_TRUE(server_ok) << h.server->error();
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_TRUE(results[w].ok) << "worker " << w << ": " << results[w].error;
  }
  EXPECT_EQ(h.server->rejoins(), 1u);
  EXPECT_EQ(h.server->evictions(), 0u);
  EXPECT_EQ(h.server->steps_completed(), setup.config.trainer.total_steps);

  std::unique_ptr<nn::Model> reference = RunInProcessReference(setup);
  EXPECT_TRUE(ModelsBitwiseEqual(*h.model, *reference))
      << "model diverged after kill@" << kill_step << " + rejoin";
  std::remove(ckpt.c_str());
}

TEST(FaultTolerance, KillRejoinBitwiseParityFloat32) {
  for (const std::int64_t kill_step : {0, 2, 4}) {
    ExpectKillRejoinParity(compress::CodecConfig::Float32(), kill_step);
  }
}

TEST(FaultTolerance, KillRejoinBitwiseParity3lc) {
  for (const std::int64_t kill_step : {0, 2, 4}) {
    ExpectKillRejoinParity(compress::CodecConfig::ThreeLC(1.0f), kill_step);
  }
}

// With lz+rans negotiated, the crash checkpoint is a 3LCZ compressed
// container and every replayed frame carries a block envelope; the
// kill+rejoin trajectory must still land bitwise on the reference model.
TEST(FaultTolerance, KillRejoinBitwiseParity3lcWithBlockCodec) {
  ExpectKillRejoinParity(compress::CodecConfig::ThreeLC(1.0f),
                         /*kill_step=*/2, "lz+rans");
}

// A connection the worker loses mid-run (injected close while queueing a
// PUSH) is survived in place: reconnect, REJOIN, recompute nothing — the
// stored encoded pushes are resent so the EA trajectory is unchanged.
TEST(FaultTolerance, InjectedCloseSurvivedByLiveReconnect) {
  TestSetup setup =
      MakeTestSetup(2, /*steps=*/6, compress::CodecConfig::ThreeLC(1.0f));
  ServerHarness h = MakeServer(setup, /*grace_ms=*/20000, /*replay_steps=*/8);
  std::string error;
  ASSERT_TRUE(h.server->Listen(&error)) << error;

  FaultInjector injector(/*seed=*/7);
  std::string spec_error;
  ASSERT_TRUE(injector.AddRulesFromSpec("close:push@2", &spec_error))
      << spec_error;

  bool server_ok = false;
  std::thread server_thread([&] { server_ok = h.server->Run(); });
  WorkerResult results[2];
  std::thread w0([&] {
    WorkerChaos chaos;
    chaos.fault = &injector;
    chaos.max_reconnects = 3;
    results[0] = RunOneWorker(setup, 0, h.server->port(), chaos);
  });
  std::thread w1([&] {
    results[1] = RunOneWorker(setup, 1, h.server->port(), WorkerChaos{});
  });
  w0.join();
  w1.join();
  server_thread.join();

  ASSERT_TRUE(server_ok) << h.server->error();
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[1].ok) << results[1].error;
  EXPECT_GE(results[0].reconnects, 1u);
  EXPECT_EQ(injector.faults_injected(), 1u);
  EXPECT_GE(h.server->rejoins(), 1u);

  std::unique_ptr<nn::Model> reference = RunInProcessReference(setup);
  EXPECT_TRUE(ModelsBitwiseEqual(*h.model, *reference));
}

// Server-side injected close on a PULL send: the step has already been
// aggregated, so the rejoining worker is caught up from the bounded
// replay buffer (verbatim retained frames), and parity still holds.
TEST(FaultTolerance, ReplayBufferResyncsAfterServerSideDrop) {
  TestSetup setup =
      MakeTestSetup(2, /*steps=*/6, compress::CodecConfig::ThreeLC(1.0f));
  FaultInjector injector(/*seed=*/11);
  std::string spec_error;
  ASSERT_TRUE(injector.AddRulesFromSpec("close:pull@2", &spec_error))
      << spec_error;
  ServerHarness h =
      MakeServer(setup, /*grace_ms=*/20000, /*replay_steps=*/8, &injector);
  std::string error;
  ASSERT_TRUE(h.server->Listen(&error)) << error;

  bool server_ok = false;
  std::thread server_thread([&] { server_ok = h.server->Run(); });
  WorkerResult results[2];
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      WorkerChaos chaos;
      chaos.max_reconnects = 3;
      results[w] = RunOneWorker(setup, w, h.server->port(), chaos);
    });
  }
  for (auto& t : workers) t.join();
  server_thread.join();

  ASSERT_TRUE(server_ok) << h.server->error();
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[1].ok) << results[1].error;
  EXPECT_GE(h.server->rejoins(), 1u);
  EXPECT_GE(h.server->replayed_frames(), 1u);

  std::unique_ptr<nn::Model> reference = RunInProcessReference(setup);
  EXPECT_TRUE(ModelsBitwiseEqual(*h.model, *reference));
}

// A worker that dies and never comes back is evicted once the grace
// window expires; the run completes on the survivors (aggregation
// rescaled) instead of failing.
TEST(FaultTolerance, GraceExpiryEvictsAndFinishesDegraded) {
  TestSetup setup =
      MakeTestSetup(2, /*steps=*/6, compress::CodecConfig::ThreeLC(1.0f));
  ServerHarness h = MakeServer(setup, /*grace_ms=*/300, /*replay_steps=*/8);
  std::string error;
  ASSERT_TRUE(h.server->Listen(&error)) << error;

  bool server_ok = false;
  std::thread server_thread([&] { server_ok = h.server->Run(); });
  WorkerResult results[2];
  std::thread w0([&] {
    results[0] = RunOneWorker(setup, 0, h.server->port(), WorkerChaos{});
  });
  std::thread w1([&] {
    WorkerChaos chaos;
    chaos.exit_after_step = 2;  // no checkpoint, no restart
    results[1] = RunOneWorker(setup, 1, h.server->port(), chaos);
  });
  w0.join();
  w1.join();
  server_thread.join();

  ASSERT_TRUE(server_ok) << h.server->error();
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[1].simulated_exit);
  EXPECT_EQ(h.server->evictions(), 1u);
  EXPECT_EQ(h.server->rejoins(), 0u);
  EXPECT_EQ(h.server->steps_completed(), setup.config.trainer.total_steps);
}

// With grace_ms = 0 (the default) a mid-run disconnect is still fatal —
// the strict PR-3 failure model is preserved exactly.
TEST(FaultTolerance, StrictModeStillFailsFastOnDisconnect) {
  TestSetup setup =
      MakeTestSetup(2, /*steps=*/6, compress::CodecConfig::Float32());
  ServerHarness h = MakeServer(setup, /*grace_ms=*/0, /*replay_steps=*/8);
  std::string error;
  ASSERT_TRUE(h.server->Listen(&error)) << error;

  bool server_ok = true;
  std::thread server_thread([&] { server_ok = h.server->Run(); });
  WorkerResult results[2];
  std::thread w0([&] {
    results[0] = RunOneWorker(setup, 0, h.server->port(), WorkerChaos{});
  });
  std::thread w1([&] {
    WorkerChaos chaos;
    chaos.exit_after_step = 1;
    results[1] = RunOneWorker(setup, 1, h.server->port(), chaos);
  });
  w0.join();
  w1.join();
  server_thread.join();

  EXPECT_FALSE(server_ok);
  EXPECT_NE(h.server->error().find("disconnected"), std::string::npos)
      << h.server->error();
  EXPECT_EQ(h.server->evictions(), 0u);
}

// A REJOIN asking to resume from a step older than the bounded replay
// buffer is rejected with an ERROR frame (the worker cannot be caught up
// exactly), without failing the run for everyone else.
TEST(FaultTolerance, StaleRejoinRejectedWithoutKillingRun) {
  TestSetup setup =
      MakeTestSetup(2, /*steps=*/8, compress::CodecConfig::ThreeLC(1.0f));
  const std::string ckpt = ::testing::TempDir() + "/ft_stale.ckpt";
  ServerHarness h = MakeServer(setup, /*grace_ms=*/20000, /*replay_steps=*/1);
  std::string error;
  ASSERT_TRUE(h.server->Listen(&error)) << error;

  bool server_ok = false;
  std::thread server_thread([&] { server_ok = h.server->Run(); });

  WorkerResult results[2];
  std::thread w0([&] {
    results[0] = RunOneWorker(setup, 0, h.server->port(), WorkerChaos{});
  });
  std::thread w1([&] {
    // Life 1: crash after step 5 so the replay buffer (depth 1) has
    // advanced far beyond step 0.
    WorkerChaos first;
    first.exit_after_step = 5;
    first.checkpoint_path = ckpt;
    WorkerResult life1 = RunOneWorker(setup, 1, h.server->port(), first);
    ASSERT_TRUE(life1.simulated_exit) << life1.error;

    // A rogue REJOIN claiming next_step=0: too old to replay -> ERROR.
    {
      nn::Model model =
          train::BuildMlp(setup.config.model, setup.config.model_seed);
      const ps::TensorPlan plan = ps::TensorPlan::FromParams(
          model.Params(), setup.config.trainer.min_compress_elems);
      auto codec = std::shared_ptr<const compress::Compressor>(
          compress::MakeCompressor(setup.config.trainer.codec));
      RetryOptions retry;
      std::string connect_error;
      const int fd = ConnectWithRetry("127.0.0.1", h.server->port(), retry,
                                      nullptr, &connect_error);
      ASSERT_GE(fd, 0) << connect_error;
      Connection stale(fd);
      HandshakePayload payload;
      payload.worker_id = 1;
      payload.plan_hash = PlanHash(plan, codec->name());
      payload.codec = codec->name();
      payload.epoch = 1;
      payload.next_step = 0;  // far behind the replay window
      util::ByteBuffer req;
      EncodeHandshake(payload, /*rejoin=*/true, req);
      ASSERT_TRUE(stale.SendFrame(MsgType::kRejoin, 0, 0, req.span()));
      ASSERT_EQ(stale.FlushOutput(2000), Connection::IoResult::kOk);
      Frame reply;
      const Connection::IoResult got = stale.WaitFrame(&reply, 5000);
      if (got == Connection::IoResult::kOk) {
        EXPECT_EQ(reply.header.type, MsgType::kError);
      } else {
        EXPECT_EQ(got, Connection::IoResult::kClosed);
      }
      stale.Close();
    }

    // Life 2: the legitimate rejoin from the checkpoint still works and
    // the run completes.
    WorkerChaos second;
    second.rejoin = true;
    second.checkpoint_path = ckpt;
    results[1] = RunOneWorker(setup, 1, h.server->port(), second);
  });
  w0.join();
  w1.join();
  server_thread.join();

  ASSERT_TRUE(server_ok) << h.server->error();
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[1].ok) << results[1].error;
  EXPECT_EQ(h.server->rejoins(), 1u);  // the stale attempt doesn't count
  EXPECT_EQ(h.server->steps_completed(), setup.config.trainer.total_steps);
  std::remove(ckpt.c_str());
}

// RequestStop from another thread (the process supervisor's path when a
// child dies unrecoverably) fails the run promptly with the given reason.
TEST(FaultTolerance, RequestStopFailsRunWithReason) {
  TestSetup setup =
      MakeTestSetup(1, /*steps=*/1, compress::CodecConfig::Float32());
  ServerHarness h = MakeServer(setup, /*grace_ms=*/0, /*replay_steps=*/8);
  std::string error;
  ASSERT_TRUE(h.server->Listen(&error)) << error;
  bool server_ok = true;
  std::thread server_thread([&] { server_ok = h.server->Run(); });
  h.server->RequestStop("supervisor says a child died");
  server_thread.join();
  EXPECT_FALSE(server_ok);
  EXPECT_NE(h.server->error().find("supervisor says a child died"),
            std::string::npos)
      << h.server->error();
}

// ---------- server crash recovery ----------

// Kill the *server* right after it completes step `kill_step` (its
// write-ahead checkpoint already on disk), resume a fresh server process
// from that checkpoint on the same port, and require the final global
// model to be bitwise identical to a fault-free in-process run. Both
// workers must survive the outage via their reconnect budget and REJOIN
// against the bumped incarnation epoch.
void ExpectServerKillResumeParity(const compress::CodecConfig& codec,
                                  std::int64_t kill_step,
                                  const std::string& block_codec = "store") {
  SCOPED_TRACE("kill_step=" + std::to_string(kill_step));
  constexpr int kWorkers = 2;
  TestSetup setup = MakeTestSetup(kWorkers, /*steps=*/6, codec);
  setup.block_codec = block_codec;
  const std::string ckpt = ::testing::TempDir() + "/ft_server_kill_" +
                           std::to_string(kill_step) + ".sckpt";
  std::remove(ckpt.c_str());

  ServerChaos crashy;
  crashy.checkpoint_path = ckpt;
  crashy.checkpoint_every = 1;
  crashy.exit_after_step = kill_step;
  ServerHarness h1 =
      MakeServer(setup, /*grace_ms=*/20000, /*replay_steps=*/8,
                 /*fault=*/nullptr, crashy);
  std::string error;
  ASSERT_TRUE(h1.server->Listen(&error)) << error;
  const int port = h1.server->port();

  bool server1_ok = true;
  std::thread server1_thread([&] { server1_ok = h1.server->Run(); });

  WorkerResult results[kWorkers];
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      WorkerChaos chaos;
      chaos.max_reconnects = 20;  // budget must span the restart gap
      results[w] = RunOneWorker(setup, w, port, chaos);
    });
  }

  server1_thread.join();
  EXPECT_FALSE(server1_ok);
  ASSERT_TRUE(h1.server->simulated_exit()) << h1.server->error();

  // Second incarnation: restore everything from the checkpoint and rebind
  // the same port (SO_REUSEADDR) while the workers are still retrying.
  ServerChaos resumed;
  resumed.port = port;
  resumed.checkpoint_path = ckpt;
  resumed.checkpoint_every = 1;
  ServerHarness h2 = MakeServer(setup, /*grace_ms=*/20000,
                                /*replay_steps=*/8, /*fault=*/nullptr,
                                resumed);
  ASSERT_TRUE(h2.server->ResumeFromCheckpoint(ckpt, &error)) << error;
  ASSERT_TRUE(h2.server->Listen(&error)) << error;
  bool server2_ok = false;
  std::thread server2_thread([&] { server2_ok = h2.server->Run(); });

  for (auto& t : workers) t.join();
  server2_thread.join();

  ASSERT_TRUE(server2_ok) << h2.server->error();
  EXPECT_EQ(h2.server->epoch(), 2u);
  EXPECT_EQ(h2.server->rejoins(), 2u);
  EXPECT_EQ(h2.server->evictions(), 0u);
  EXPECT_EQ(h2.server->steps_completed(), setup.config.trainer.total_steps);
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_TRUE(results[w].ok) << "worker " << w << ": " << results[w].error;
    EXPECT_GE(results[w].reconnects, 1u) << "worker " << w;
  }

  std::unique_ptr<nn::Model> reference = RunInProcessReference(setup);
  EXPECT_TRUE(ModelsBitwiseEqual(*h2.model, *reference))
      << "model diverged after server kill@" << kill_step << " + resume";
  std::remove(ckpt.c_str());
}

TEST(FaultTolerance, KillServerResumeBitwiseParityFloat32) {
  for (const std::int64_t kill_step : {0, 2, 4}) {
    ExpectServerKillResumeParity(compress::CodecConfig::Float32(), kill_step);
  }
}

TEST(FaultTolerance, KillServerResumeBitwiseParity3lc) {
  for (const std::int64_t kill_step : {0, 2, 4}) {
    ExpectServerKillResumeParity(compress::CodecConfig::ThreeLC(1.0f),
                                 kill_step);
  }
}

// The write-ahead server checkpoint is a 3LCZ compressed container when
// lz+rans is negotiated; the resumed incarnation must restore from it —
// including the replay ring's already-enveloped frames — bitwise exactly.
TEST(FaultTolerance, KillServerResumeBitwiseParity3lcWithBlockCodec) {
  ExpectServerKillResumeParity(compress::CodecConfig::ThreeLC(1.0f),
                               /*kill_step=*/2, "lz+rans");
}

// Worst case: the server crashes at the same step a worker does, so the
// resumed incarnation comes up while that worker is itself rejoining from
// its crash checkpoint. Both the survivor's live reconnect and the
// victim's cold rejoin must land on epoch 2, and parity must still hold.
TEST(FaultTolerance, ServerRestartWhileWorkerRejoining) {
  constexpr std::int64_t kCrashStep = 2;
  TestSetup setup =
      MakeTestSetup(2, /*steps=*/6, compress::CodecConfig::ThreeLC(1.0f));
  const std::string server_ckpt =
      ::testing::TempDir() + "/ft_race_server.sckpt";
  const std::string worker_ckpt =
      ::testing::TempDir() + "/ft_race_worker.ckpt";
  std::remove(server_ckpt.c_str());

  ServerChaos crashy;
  crashy.checkpoint_path = server_ckpt;
  crashy.checkpoint_every = 1;
  crashy.exit_after_step = kCrashStep;
  ServerHarness h1 =
      MakeServer(setup, /*grace_ms=*/20000, /*replay_steps=*/8,
                 /*fault=*/nullptr, crashy);
  std::string error;
  ASSERT_TRUE(h1.server->Listen(&error)) << error;
  const int port = h1.server->port();

  bool server1_ok = true;
  std::thread server1_thread([&] { server1_ok = h1.server->Run(); });

  WorkerResult results[2];
  std::thread survivor([&] {
    WorkerChaos chaos;
    chaos.max_reconnects = 20;
    results[0] = RunOneWorker(setup, 0, port, chaos);
  });
  std::thread victim([&] {
    WorkerChaos first;
    first.exit_after_step = kCrashStep;
    first.checkpoint_path = worker_ckpt;
    first.max_reconnects = 20;
    WorkerResult life1 = RunOneWorker(setup, 1, port, first);
    ASSERT_TRUE(life1.simulated_exit) << life1.error;
    // Life 2 starts while the server may still be down: the initial
    // rejoin connect spends the same reconnect budget as mid-run drops.
    WorkerChaos second;
    second.rejoin = true;
    second.checkpoint_path = worker_ckpt;
    second.max_reconnects = 20;
    results[1] = RunOneWorker(setup, 1, port, second);
  });

  server1_thread.join();
  EXPECT_FALSE(server1_ok);
  ASSERT_TRUE(h1.server->simulated_exit()) << h1.server->error();

  ServerChaos resumed;
  resumed.port = port;
  resumed.checkpoint_path = server_ckpt;
  resumed.checkpoint_every = 1;
  ServerHarness h2 = MakeServer(setup, /*grace_ms=*/20000,
                                /*replay_steps=*/8, /*fault=*/nullptr,
                                resumed);
  ASSERT_TRUE(h2.server->ResumeFromCheckpoint(server_ckpt, &error)) << error;
  ASSERT_TRUE(h2.server->Listen(&error)) << error;
  bool server2_ok = false;
  std::thread server2_thread([&] { server2_ok = h2.server->Run(); });

  survivor.join();
  victim.join();
  server2_thread.join();

  ASSERT_TRUE(server2_ok) << h2.server->error();
  EXPECT_EQ(h2.server->epoch(), 2u);
  EXPECT_EQ(h2.server->rejoins(), 2u);
  EXPECT_EQ(h2.server->evictions(), 0u);
  EXPECT_EQ(h2.server->steps_completed(), setup.config.trainer.total_steps);
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[1].ok) << results[1].error;

  std::unique_ptr<nn::Model> reference = RunInProcessReference(setup);
  EXPECT_TRUE(ModelsBitwiseEqual(*h2.model, *reference))
      << "model diverged after simultaneous server+worker crash";
  std::remove(server_ckpt.c_str());
  std::remove(worker_ckpt.c_str());
}

// A torn newest checkpoint generation (crash mid-write would be caught
// by the atomic rename; this simulates post-rename disk corruption) must
// never be half-loaded. With an older intact generation on disk, resume
// falls back to it; with every generation corrupted, resume is rejected
// with a "no usable checkpoint" diagnostic.
TEST(FaultTolerance, TornServerCheckpointFallsBackOrIsRejected) {
  TestSetup setup =
      MakeTestSetup(1, /*steps=*/2, compress::CodecConfig::Float32());
  const std::string ckpt = ::testing::TempDir() + "/ft_torn_server.sckpt";
  std::remove(ckpt.c_str());
  for (int g = 0; g < 16; ++g) {
    std::remove((ckpt + ".g" + std::to_string(g)).c_str());
  }

  // Produce valid generations via a clean run. checkpoint_every=1 over
  // two steps with the default retention of 2 leaves exactly g0 and g1.
  ServerChaos chaos;
  chaos.checkpoint_path = ckpt;
  chaos.checkpoint_every = 1;
  ServerHarness h = MakeServer(setup, /*grace_ms=*/0, /*replay_steps=*/8,
                               /*fault=*/nullptr, chaos);
  std::string error;
  ASSERT_TRUE(h.server->Listen(&error)) << error;
  bool server_ok = false;
  std::thread server_thread([&] { server_ok = h.server->Run(); });
  WorkerResult result =
      RunOneWorker(setup, 0, h.server->port(), WorkerChaos{});
  server_thread.join();
  ASSERT_TRUE(server_ok) << h.server->error();
  ASSERT_TRUE(result.ok) << result.error;

  // Retention keeps the two newest generations; their numbers depend on
  // how many forced writes the run performed, so discover them.
  std::vector<std::string> gens;
  for (int g = 0; g < 32; ++g) {
    const std::string path = ckpt + ".g" + std::to_string(g);
    std::FILE* probe = std::fopen(path.c_str(), "rb");
    if (probe != nullptr) {
      std::fclose(probe);
      gens.push_back(path);
    }
  }
  ASSERT_EQ(gens.size(), 2u) << "expected retention to keep 2 generations";
  const std::string gen0 = gens[0];  // older
  const std::string gen1 = gens[1];  // newest
  const auto read_bytes = [](const std::string& path) {
    std::vector<unsigned char> bytes;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return bytes;
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
      bytes.clear();
    }
    std::fclose(f);
    return bytes;
  };
  const auto write_bytes = [&](const std::string& path,
                               const std::vector<unsigned char>& data) {
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), out), data.size());
    std::fclose(out);
  };
  const std::vector<unsigned char> bytes0 = read_bytes(gen0);
  const std::vector<unsigned char> bytes1 = read_bytes(gen1);
  ASSERT_GT(bytes0.size(), 16u);
  ASSERT_GT(bytes1.size(), 16u);

  // Truncate the newest generation to half: resume must skip it and fall
  // back to the older intact one.
  write_bytes(gen1, std::vector<unsigned char>(
                        bytes1.begin(), bytes1.begin() + bytes1.size() / 2));
  {
    ServerHarness fresh =
        MakeServer(setup, /*grace_ms=*/0, /*replay_steps=*/8);
    std::string resume_error;
    EXPECT_TRUE(fresh.server->ResumeFromCheckpoint(ckpt, &resume_error))
        << resume_error;
    EXPECT_EQ(fresh.server->checkpoint_fallbacks(), 1u);
    EXPECT_GE(fresh.server->epoch(), 1u);
  }

  // Flip a byte mid-file in the older generation too: with every
  // generation bad, resume must be rejected, never half-loaded.
  std::vector<unsigned char> flipped = bytes0;
  flipped[flipped.size() / 2] ^= 0x40;
  write_bytes(gen0, flipped);
  {
    ServerHarness fresh =
        MakeServer(setup, /*grace_ms=*/0, /*replay_steps=*/8);
    std::string resume_error;
    EXPECT_FALSE(fresh.server->ResumeFromCheckpoint(ckpt, &resume_error))
        << "all-corrupt checkpoint set accepted";
    EXPECT_NE(resume_error.find("no usable checkpoint"), std::string::npos)
        << resume_error;
  }

  // Pristine bytes restore both generations: the newest loads with no
  // fallback, proving the harness itself is sound.
  write_bytes(gen0, bytes0);
  write_bytes(gen1, bytes1);
  ServerHarness fresh = MakeServer(setup, /*grace_ms=*/0, /*replay_steps=*/8);
  std::string resume_error;
  EXPECT_TRUE(fresh.server->ResumeFromCheckpoint(ckpt, &resume_error))
      << resume_error;
  EXPECT_EQ(fresh.server->checkpoint_fallbacks(), 0u);
  EXPECT_EQ(fresh.server->epoch(), 2u);
  std::remove(gen0.c_str());
  std::remove(gen1.c_str());
}

// ---------- liveness: leases, hangs, one-way partitions ----------

// A worker whose endpoint freezes mid-run (injected `stall`: stops
// reading and flushing without closing, like a SIGSTOP'd process) is
// detected by BOTH leases: the server's lease expires (no frames in) and
// routes through the grace path, force-closing the half-open socket; the
// worker's own lease expires (no frames out of its blocked inbox) and it
// reconnects. The REJOIN resends the stored encoded push, so the final
// model is still bitwise identical to a fault-free run.
TEST(FaultTolerance, StalledWorkerLeaseEvictsThenRejoinsWithParity) {
  TestSetup setup =
      MakeTestSetup(2, /*steps=*/6, compress::CodecConfig::ThreeLC(1.0f));
  ServerChaos leases;
  leases.lease_ms = 400;
  leases.heartbeat_ms = 100;
  ServerHarness h = MakeServer(setup, /*grace_ms=*/20000, /*replay_steps=*/8,
                               /*fault=*/nullptr, leases);
  std::string error;
  ASSERT_TRUE(h.server->Listen(&error)) << error;

  FaultInjector injector(/*seed=*/21);
  std::string spec_error;
  ASSERT_TRUE(injector.AddRulesFromSpec("stall:push@2", &spec_error))
      << spec_error;

  bool server_ok = false;
  std::thread server_thread([&] { server_ok = h.server->Run(); });
  WorkerResult results[2];
  std::thread w0([&] {
    WorkerChaos chaos;
    chaos.lease_ms = 400;
    chaos.heartbeat_ms = 100;
    results[0] = RunOneWorker(setup, 0, h.server->port(), chaos);
  });
  std::thread w1([&] {
    WorkerChaos chaos;
    chaos.fault = &injector;
    chaos.max_reconnects = 3;
    // Longer than the server's lease so the server detects the hang
    // first; the worker's own clock is the (slower) self-recovery path —
    // its blocked rx never sees the server's force-close.
    chaos.lease_ms = 1500;
    chaos.heartbeat_ms = 100;
    results[1] = RunOneWorker(setup, 1, h.server->port(), chaos);
  });
  w0.join();
  w1.join();
  server_thread.join();

  ASSERT_TRUE(server_ok) << h.server->error();
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[1].ok) << results[1].error;
  EXPECT_GE(results[1].reconnects, 1u);
  EXPECT_GE(h.server->lease_expiries(), 1u);
  EXPECT_GE(h.server->rejoins(), 1u);
  EXPECT_EQ(h.server->evictions(), 0u);  // grace held for the rejoin

  std::unique_ptr<nn::Model> reference = RunInProcessReference(setup);
  EXPECT_TRUE(ModelsBitwiseEqual(*h.model, *reference));
}

// A hung worker that never comes back (stall + zero reconnect budget)
// must converge to exactly the same survivors' model as a worker that
// died cleanly at the same point: lease expiry -> grace -> eviction is
// just a slower route to the rescaled aggregation.
TEST(FaultTolerance, HungWorkerEvictionMatchesCleanDeathRescaledParity) {
  TestSetup setup =
      MakeTestSetup(2, /*steps=*/6, compress::CodecConfig::ThreeLC(1.0f));

  // Run 1: worker 1 freezes while sending its step-2 push (contributed
  // steps 0..1), detected only by the server's lease.
  ServerChaos leases;
  leases.lease_ms = 400;
  leases.heartbeat_ms = 100;
  ServerHarness hung = MakeServer(setup, /*grace_ms=*/300, /*replay_steps=*/8,
                                  /*fault=*/nullptr, leases);
  std::string error;
  ASSERT_TRUE(hung.server->Listen(&error)) << error;
  FaultInjector injector(/*seed=*/22);
  std::string spec_error;
  ASSERT_TRUE(injector.AddRulesFromSpec("stall:push@2", &spec_error))
      << spec_error;
  {
    bool ok = false;
    std::thread server_thread([&] { ok = hung.server->Run(); });
    WorkerResult results[2];
    std::thread w0([&] {
      // Healthy survivor: beacons on (leases imply heartbeats), its own
      // lease generous enough to never self-trip while the server holds
      // the barrier for the hung peer.
      WorkerChaos chaos;
      chaos.lease_ms = 5000;
      chaos.heartbeat_ms = 100;
      results[0] = RunOneWorker(setup, 0, hung.server->port(), chaos);
    });
    std::thread w1([&] {
      WorkerChaos chaos;
      chaos.fault = &injector;
      chaos.max_reconnects = 0;  // the hung worker never returns
      chaos.lease_ms = 2000;     // server's (400 ms) lease detects first
      chaos.heartbeat_ms = 100;
      results[1] = RunOneWorker(setup, 1, hung.server->port(), chaos);
    });
    w0.join();
    w1.join();
    server_thread.join();
    ASSERT_TRUE(ok) << hung.server->error();
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_FALSE(results[1].ok);  // its reconnect budget was zero
    EXPECT_GE(hung.server->lease_expiries(), 1u);
    EXPECT_EQ(hung.server->evictions(), 1u);
    EXPECT_EQ(hung.server->steps_completed(),
              setup.config.trainer.total_steps);
  }

  // Run 2: worker 1 exits cleanly after completing step 1 — the same
  // contribution cut-off, detected by the disconnect instead of a lease.
  ServerHarness dead = MakeServer(setup, /*grace_ms=*/300, /*replay_steps=*/8);
  ASSERT_TRUE(dead.server->Listen(&error)) << error;
  {
    bool ok = false;
    std::thread server_thread([&] { ok = dead.server->Run(); });
    WorkerResult results[2];
    std::thread w0([&] {
      results[0] = RunOneWorker(setup, 0, dead.server->port(), WorkerChaos{});
    });
    std::thread w1([&] {
      WorkerChaos chaos;
      chaos.exit_after_step = 1;  // no checkpoint, no restart
      results[1] = RunOneWorker(setup, 1, dead.server->port(), chaos);
    });
    w0.join();
    w1.join();
    server_thread.join();
    ASSERT_TRUE(ok) << dead.server->error();
    EXPECT_EQ(dead.server->evictions(), 1u);
  }

  EXPECT_TRUE(ModelsBitwiseEqual(*hung.model, *dead.model))
      << "lease eviction and clean death diverged at the same cut-off";
}

// Satellite regression: a one-way (tx) partition leaves the worker
// blocked in pull-wait — its pushes vanish, but its rx side still sees
// the server, so its own lease never trips. The SERVER's lease must bound
// the hang: expiry force-closes the socket, the worker sees EOF and
// reconnects within lease + backoff, not pull_timeout_ms (20 s here, 60 s
// in production configs).
TEST(FaultTolerance, TxPartitionedWorkerReconnectsWithinLeaseBudget) {
  TestSetup setup =
      MakeTestSetup(2, /*steps=*/6, compress::CodecConfig::ThreeLC(1.0f));
  ServerChaos leases;
  leases.lease_ms = 500;
  leases.heartbeat_ms = 100;
  ServerHarness h = MakeServer(setup, /*grace_ms=*/20000, /*replay_steps=*/8,
                               /*fault=*/nullptr, leases);
  std::string error;
  ASSERT_TRUE(h.server->Listen(&error)) << error;

  FaultInjector injector(/*seed=*/23);
  std::string spec_error;
  ASSERT_TRUE(injector.AddRulesFromSpec("partition:tx@2", &spec_error))
      << spec_error;

  const auto start = std::chrono::steady_clock::now();
  bool server_ok = false;
  std::thread server_thread([&] { server_ok = h.server->Run(); });
  WorkerResult results[2];
  std::thread w0([&] {
    WorkerChaos chaos;  // healthy survivor: beacons on, lease generous
    chaos.lease_ms = 5000;
    chaos.heartbeat_ms = 100;
    results[0] = RunOneWorker(setup, 0, h.server->port(), chaos);
  });
  std::thread w1([&] {
    WorkerChaos chaos;
    chaos.fault = &injector;
    chaos.max_reconnects = 3;
    chaos.lease_ms = 2000;  // must NOT be what saves it: rx stays live
    chaos.heartbeat_ms = 100;
    results[1] = RunOneWorker(setup, 1, h.server->port(), chaos);
  });
  w0.join();
  w1.join();
  server_thread.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_TRUE(server_ok) << h.server->error();
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[1].ok) << results[1].error;
  EXPECT_GE(results[1].reconnects, 1u);
  EXPECT_GE(h.server->lease_expiries(), 1u);
  EXPECT_GE(h.server->rejoins(), 1u);
  // Bounded by the server lease (500 ms) + backoff, nowhere near the
  // 20 s pull timeout the worker would otherwise ride out.
  EXPECT_LT(elapsed_ms, 10000.0);

  std::unique_ptr<nn::Model> reference = RunInProcessReference(setup);
  EXPECT_TRUE(ModelsBitwiseEqual(*h.model, *reference));
}

// The liveness additions to the injector grammar parse (direction rides
// the TYPE slot for partition rules) and bad directions are diagnosed.
TEST(FaultTolerance, StallAndPartitionSpecsParse) {
  FaultInjector ok(1);
  std::string error;
  EXPECT_TRUE(ok.AddRulesFromSpec(
      "stall:push@2;partition:rx@3;partition:tx@1#2;partition:both@any#*",
      &error))
      << error;
  FaultInjector bad(1);
  EXPECT_FALSE(bad.AddRulesFromSpec("partition:bogus@1", &error));
  EXPECT_NE(error.find("partition direction"), std::string::npos) << error;
}

// Seeded chaos sweep, in-process edition: each seed derives a random
// recoverable fault schedule (mixed corruption, close, delay, stall, and
// one-way partitions) for worker 1, and every seed must terminate
// cleanly with the survivors' — here, everyone's — final model bitwise
// identical to a fault-free run. tools/chaos_sweep.py runs the same idea
// against the real multi-process example.
TEST(FaultTolerance, ChaosSweepSeededSchedulesTerminateCleanly) {
  const char* const kMenu[] = {
      "corrupt:push@", "close:push@",      "delay50:pull@",
      "stall:push@",   "partition:tx@",    "partition:rx@",
  };
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed);
    const char* const action = kMenu[rng.Next() % 6];
    const std::int64_t at = 1 + static_cast<std::int64_t>(rng.Next() % 3);
    const std::string spec = std::string(action) + std::to_string(at);
    SCOPED_TRACE("spec=" + spec);

    TestSetup setup =
        MakeTestSetup(2, /*steps=*/6, compress::CodecConfig::ThreeLC(1.0f));
    ServerChaos leases;
    leases.lease_ms = 400;
    leases.heartbeat_ms = 100;
    ServerHarness h = MakeServer(setup, /*grace_ms=*/20000,
                                 /*replay_steps=*/8, /*fault=*/nullptr,
                                 leases);
    std::string error;
    ASSERT_TRUE(h.server->Listen(&error)) << error;

    FaultInjector injector(seed);
    std::string spec_error;
    ASSERT_TRUE(injector.AddRulesFromSpec(spec, &spec_error)) << spec_error;

    bool server_ok = false;
    std::thread server_thread([&] { server_ok = h.server->Run(); });
    WorkerResult results[2];
    std::thread w0([&] {
      WorkerChaos chaos;
      chaos.lease_ms = 400;
      chaos.heartbeat_ms = 100;
      results[0] = RunOneWorker(setup, 0, h.server->port(), chaos);
    });
    std::thread w1([&] {
      WorkerChaos chaos;
      chaos.fault = &injector;
      chaos.max_reconnects = 5;
      chaos.lease_ms = 400;
      chaos.heartbeat_ms = 100;
      results[1] = RunOneWorker(setup, 1, h.server->port(), chaos);
    });
    w0.join();
    w1.join();
    server_thread.join();

    ASSERT_TRUE(server_ok) << h.server->error();
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_TRUE(results[1].ok) << results[1].error;
    EXPECT_EQ(h.server->evictions(), 0u);
    EXPECT_EQ(h.server->steps_completed(),
              setup.config.trainer.total_steps);

    std::unique_ptr<nn::Model> reference = RunInProcessReference(setup);
    EXPECT_TRUE(ModelsBitwiseEqual(*h.model, *reference));
  }
}

// ---------- deterministic fault injection ----------

std::vector<std::string> DriveSchedule(std::uint64_t seed) {
  FaultInjector injector(seed);
  std::string error;
  EXPECT_TRUE(
      injector.AddRulesFromSpec("corrupt:push@any#*;delay5:pull@3", &error))
      << error;
  for (std::uint64_t step = 0; step < 6; ++step) {
    for (int t = 0; t < 3; ++t) {
      injector.OnSend(MsgType::kPush, step, 512);
      injector.OnSend(MsgType::kPull, step, 2048);
    }
    injector.OnSend(MsgType::kStepStats, step, 12);
  }
  return injector.schedule_log();
}

TEST(FaultTolerance, SameSeedSameFaultSchedule) {
  const std::vector<std::string> a = DriveSchedule(1234);
  const std::vector<std::string> b = DriveSchedule(1234);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FaultTolerance, DifferentSeedDifferentFaultSchedule) {
  // Same rules, same traffic: the corrupted byte offsets must differ
  // because they are drawn from the seeded stream.
  const std::vector<std::string> a = DriveSchedule(1234);
  const std::vector<std::string> b = DriveSchedule(99);
  EXPECT_EQ(a.size(), b.size());  // rule matching is seed-independent
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace threelc::rpc
