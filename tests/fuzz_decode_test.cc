// Failure-injection tests: decoders must survive corrupted, truncated, and
// adversarial payloads — either throwing a std::exception or producing a
// finite tensor — but never crashing or reading out of bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace threelc::compress {
namespace {

using tensor::Shape;
using tensor::Tensor;

struct FuzzCase {
  const char* label;
  CodecConfig config;
};

class DecodeFuzz : public ::testing::TestWithParam<FuzzCase> {
 protected:
  // Decode and check the result is either an exception or a finite tensor.
  static void TryDecode(const Compressor& codec, util::ByteSpan payload,
                        const Shape& shape) {
    Tensor out(shape);
    util::ByteReader reader(payload);
    try {
      codec.Decode(reader, out);
    } catch (const std::exception&) {
      return;  // rejecting corrupt input is correct behaviour
    }
    // Accepted: every value must at least be a real float.
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_TRUE(std::isfinite(out[i]) || std::isnan(out[i]) ||
                  std::isinf(out[i]));
    }
  }
};

TEST_P(DecodeFuzz, SingleByteFlips) {
  auto codec = MakeCompressor(GetParam().config);
  util::Rng rng(1);
  Tensor in(Shape{503});
  tensor::FillNormal(in, rng, 0.0f, 0.1f);
  auto ctx = codec->MakeContext(in.shape());
  util::ByteBuffer buf;
  codec->Encode(in, *ctx, buf);

  // Flip each of a sample of byte positions through several values.
  for (std::size_t pos = 0; pos < buf.size();
       pos += std::max<std::size_t>(1, buf.size() / 64)) {
    for (std::uint8_t delta : {0x01, 0x80, 0xFF}) {
      util::ByteBuffer corrupted;
      corrupted.Append(buf.span());
      corrupted.data()[pos] = static_cast<std::uint8_t>(
          corrupted.data()[pos] ^ delta);
      TryDecode(*codec, corrupted.span(), in.shape());
    }
  }
}

TEST_P(DecodeFuzz, Truncations) {
  auto codec = MakeCompressor(GetParam().config);
  util::Rng rng(2);
  Tensor in(Shape{257});
  tensor::FillNormal(in, rng, 0.0f, 1.0f);
  auto ctx = codec->MakeContext(in.shape());
  util::ByteBuffer buf;
  codec->Encode(in, *ctx, buf);
  for (std::size_t len = 0; len < buf.size();
       len += std::max<std::size_t>(1, buf.size() / 32)) {
    util::ByteBuffer truncated;
    truncated.Append(buf.data(), len);
    TryDecode(*codec, truncated.span(), in.shape());
  }
}

TEST_P(DecodeFuzz, RandomGarbage) {
  auto codec = MakeCompressor(GetParam().config);
  util::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    util::ByteBuffer garbage;
    const std::size_t n = rng.Below(600);
    for (std::size_t i = 0; i < n; ++i) {
      garbage.PushByte(static_cast<std::uint8_t>(rng.Below(256)));
    }
    TryDecode(*codec, garbage.span(), Shape{101});
  }
}

TEST_P(DecodeFuzz, EmptyPayload) {
  auto codec = MakeCompressor(GetParam().config);
  TryDecode(*codec, util::ByteSpan{}, Shape{7});
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, DecodeFuzz,
    ::testing::Values(FuzzCase{"float32", CodecConfig::Float32()},
                      FuzzCase{"int8", CodecConfig::EightBit()},
                      FuzzCase{"stoch3", CodecConfig::StochThreeQE()},
                      FuzzCase{"mqe1bit", CodecConfig::MqeOneBit()},
                      FuzzCase{"sparse25", CodecConfig::Sparsification(0.25f)},
                      FuzzCase{"sparse5", CodecConfig::Sparsification(0.05f)},
                      FuzzCase{"local2", CodecConfig::TwoLocalSteps()},
                      FuzzCase{"threelc100", CodecConfig::ThreeLC(1.0f)},
                      FuzzCase{"threelc175", CodecConfig::ThreeLC(1.75f)},
                      FuzzCase{"threelc190", CodecConfig::ThreeLC(1.9f)}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace threelc::compress
