// Tests for the NN substrate: layers (numerical gradient checks), loss,
// optimizer, schedules, and end-to-end learning on a toy task.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "data/synthetic.h"
#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/lr_schedule.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"
#include "train/model_zoo.h"
#include "util/rng.h"

namespace threelc::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

Tensor RandomTensor(Shape shape, std::uint64_t seed, float stddev = 1.0f) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  tensor::FillNormal(t, rng, 0.0f, stddev);
  return t;
}

// Central-difference numerical gradient of a scalar loss with respect to
// one tensor, compared against the analytic gradient.
void CheckGradient(Tensor& variable, const Tensor& analytic_grad,
                   const std::function<double()>& loss_fn,
                   float eps = 1e-3f, float tol = 2e-2f) {
  ASSERT_TRUE(variable.SameShape(analytic_grad));
  for (std::size_t i = 0; i < variable.size(); i += 7) {  // sample entries
    const float orig = variable[i];
    variable[i] = orig + eps;
    const double up = loss_fn();
    variable[i] = orig - eps;
    const double down = loss_fn();
    variable[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic_grad[i], numeric,
                tol * std::max(1.0, std::fabs(numeric)))
        << "grad mismatch at index " << i;
  }
}

// ---------- Loss ----------

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits(Shape{2, 10});
  LossResult r = SoftmaxCrossEntropy(logits, {3, 7});
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-5);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionLowLoss) {
  Tensor logits(Shape{1, 3}, {100.0f, 0.0f, 0.0f});
  LossResult r = SoftmaxCrossEntropy(logits, {0});
  EXPECT_LT(r.loss, 1e-6);
  EXPECT_EQ(r.correct, 1u);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  Tensor logits = RandomTensor(Shape{4, 5}, 1);
  LossResult r = SoftmaxCrossEntropy(logits, {0, 1, 2, 3});
  for (int b = 0; b < 4; ++b) {
    double row = 0.0;
    for (int c = 0; c < 5; ++c) {
      row += r.grad_logits[static_cast<std::size_t>(b * 5 + c)];
    }
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, GradientMatchesNumerical) {
  Tensor logits = RandomTensor(Shape{3, 4}, 2);
  const std::vector<std::int32_t> labels = {1, 3, 0};
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  auto loss_fn = [&] { return SoftmaxCrossEntropy(logits, labels).loss; };
  CheckGradient(logits, r.grad_logits, loss_fn);
}

TEST(SoftmaxCrossEntropy, NumericallyStableWithHugeLogits) {
  Tensor logits(Shape{1, 3}, {1e4f, -1e4f, 0.0f});
  LossResult r = SoftmaxCrossEntropy(logits, {1});
  EXPECT_TRUE(std::isfinite(r.loss));
}

TEST(Accuracy, CountsTopOne) {
  Tensor logits(Shape{3, 2}, {1.0f, 0.0f, 0.0f, 1.0f, 1.0f, 0.0f});
  EXPECT_DOUBLE_EQ(Accuracy(logits, {0, 1, 0}), 1.0);
  EXPECT_NEAR(Accuracy(logits, {1, 1, 0}), 2.0 / 3.0, 1e-9);
}

// ---------- Dense ----------

TEST(Dense, ForwardMatchesManualComputation) {
  util::Rng rng(3);
  Dense layer("fc", 2, 3, rng);
  auto params = layer.Params();
  // Set W and b to known values.
  Tensor& w = *params[0].value;
  Tensor& b = *params[1].value;
  w = Tensor(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  b = Tensor(Shape{3}, {0.5f, -0.5f, 1.0f});
  Tensor in(Shape{1, 2}, {1.0f, 2.0f});
  Tensor out = layer.Forward(in, true);
  EXPECT_FLOAT_EQ(out[0], 1 + 8 + 0.5f);
  EXPECT_FLOAT_EQ(out[1], 2 + 10 - 0.5f);
  EXPECT_FLOAT_EQ(out[2], 3 + 12 + 1.0f);
}

TEST(Dense, GradientsMatchNumerical) {
  util::Rng rng(4);
  Dense layer("fc", 5, 4, rng);
  Tensor in = RandomTensor(Shape{3, 5}, 5);
  const std::vector<std::int32_t> labels = {0, 2, 1};
  auto loss_fn = [&] {
    Tensor logits = layer.Forward(in, true);
    return SoftmaxCrossEntropy(logits, labels).loss;
  };
  Tensor logits = layer.Forward(in, true);
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  Tensor grad_in = layer.Backward(r.grad_logits);
  auto params = layer.Params();
  CheckGradient(*params[0].value, *params[0].grad, loss_fn);
  CheckGradient(*params[1].value, *params[1].grad, loss_fn);
  CheckGradient(in, grad_in, loss_fn);
}

TEST(Dense, ParamNamesAndFlags) {
  util::Rng rng(6);
  Dense layer("fc1", 4, 2, rng);
  auto params = layer.Params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "fc1/W");
  EXPECT_TRUE(params[0].compress);
  EXPECT_TRUE(params[0].weight_decay);
  EXPECT_EQ(params[1].name, "fc1/b");
  EXPECT_FALSE(params[1].weight_decay);
}

// ---------- ReLU / Flatten ----------

TEST(Relu, ForwardClampsNegatives) {
  Relu relu;
  Tensor in(Shape{4}, {-1.0f, 0.0f, 2.0f, -0.5f});
  Tensor out = relu.Forward(in, true);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_EQ(out[2], 2.0f);
  EXPECT_EQ(out[3], 0.0f);
}

TEST(Relu, BackwardMasksGradient) {
  Relu relu;
  Tensor in(Shape{3}, {-1.0f, 1.0f, 3.0f});
  relu.Forward(in, true);
  Tensor g(Shape{3}, {5.0f, 5.0f, 5.0f});
  Tensor gin = relu.Backward(g);
  EXPECT_EQ(gin[0], 0.0f);
  EXPECT_EQ(gin[1], 5.0f);
  EXPECT_EQ(gin[2], 5.0f);
}

TEST(Flatten, RoundTripShapes) {
  Flatten flat;
  Tensor in = RandomTensor(Shape{2, 3, 4, 5}, 7);
  Tensor out = flat.Forward(in, true);
  EXPECT_EQ(out.shape(), Shape({2, 60}));
  Tensor back = flat.Backward(out);
  EXPECT_EQ(back.shape(), in.shape());
  EXPECT_EQ(tensor::MaxAbsDiff(back, in), 0.0f);
}

// ---------- BatchNorm ----------

TEST(BatchNorm, NormalizesBatchInTraining) {
  BatchNorm1d bn("bn", 4);
  Tensor in = RandomTensor(Shape{64, 4}, 8, 3.0f);
  Tensor out = bn.Forward(in, true);
  // Per-feature mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (int j = 0; j < 4; ++j) {
    double mean = 0.0, var = 0.0;
    for (int i = 0; i < 64; ++i) mean += out[static_cast<std::size_t>(i * 4 + j)];
    mean /= 64.0;
    for (int i = 0; i < 64; ++i) {
      const double d = out[static_cast<std::size_t>(i * 4 + j)] - mean;
      var += d * d;
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeToDataStats) {
  BatchNorm1d bn("bn", 2, /*momentum=*/0.5f);
  util::Rng rng(9);
  for (int step = 0; step < 200; ++step) {
    Tensor in(Shape{128, 2});
    for (std::size_t i = 0; i < in.size(); i += 2) {
      in[i] = rng.NormalFloat(3.0f, 2.0f);
      in[i + 1] = rng.NormalFloat(-1.0f, 0.5f);
    }
    bn.Forward(in, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.0, 0.3);
  EXPECT_NEAR(bn.running_mean()[1], -1.0, 0.1);
  EXPECT_NEAR(std::sqrt(bn.running_var()[0]), 2.0, 0.3);
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm1d bn("bn", 1);
  // Never trained: running mean 0, var 1 -> eval is near-identity.
  Tensor in(Shape{2, 1}, {1.0f, -1.0f});
  Tensor out = bn.Forward(in, false);
  EXPECT_NEAR(out[0], 1.0f, 1e-4);
  EXPECT_NEAR(out[1], -1.0f, 1e-4);
}

TEST(BatchNorm, GradientsMatchNumerical) {
  BatchNorm1d bn("bn", 3);
  Tensor in = RandomTensor(Shape{8, 3}, 10);
  const std::vector<std::int32_t> labels = {0, 1, 2, 0, 1, 2, 0, 1};
  auto loss_fn = [&] {
    Tensor out = bn.Forward(in, true);
    return SoftmaxCrossEntropy(out, labels).loss;
  };
  Tensor out = bn.Forward(in, true);
  LossResult r = SoftmaxCrossEntropy(out, labels);
  Tensor gin = bn.Backward(r.grad_logits);
  auto params = bn.Params();
  CheckGradient(*params[0].value, *params[0].grad, loss_fn);  // gamma
  CheckGradient(*params[1].value, *params[1].grad, loss_fn);  // beta
  CheckGradient(in, gin, loss_fn);
}

TEST(BatchNorm, ParamsBypassCompression) {
  BatchNorm1d bn("bn", 3);
  for (const auto& p : bn.Params()) {
    EXPECT_FALSE(p.compress);
    EXPECT_FALSE(p.weight_decay);
  }
  EXPECT_EQ(bn.Buffers().size(), 2u);
}

// ---------- Conv2d ----------

TEST(Conv2d, OutSizeFormula) {
  util::Rng rng(11);
  Conv2d conv("c", 1, 1, 3, 1, 1, rng);
  EXPECT_EQ(conv.OutSize(8), 8);  // same padding
  Conv2d conv2("c2", 1, 1, 3, 2, 0, rng);
  EXPECT_EQ(conv2.OutSize(9), 4);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  util::Rng rng(12);
  Conv2d conv("c", 1, 1, 3, 1, 1, rng);
  auto params = conv.Params();
  Tensor& w = *params[0].value;
  w.SetZero();
  w.at({0, 0, 1, 1}) = 1.0f;  // center tap
  params[1].value->SetZero();
  Tensor in = RandomTensor(Shape{2, 1, 5, 5}, 13);
  Tensor out = conv.Forward(in, true);
  EXPECT_EQ(out.shape(), in.shape());
  EXPECT_LT(tensor::MaxAbsDiff(out, in), 1e-6f);
}

TEST(Conv2d, KnownSmallConvolution) {
  util::Rng rng(14);
  Conv2d conv("c", 1, 1, 2, 1, 0, rng);
  auto params = conv.Params();
  *params[0].value = Tensor(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  params[1].value->SetZero();
  Tensor in(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor out = conv.Forward(in, true);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  // Top-left window {1,2,4,5} . {1,2,3,4} = 1+4+12+20 = 37.
  EXPECT_FLOAT_EQ(out[0], 37.0f);
  EXPECT_FLOAT_EQ(out[1], 47.0f);
  EXPECT_FLOAT_EQ(out[2], 67.0f);
  EXPECT_FLOAT_EQ(out[3], 77.0f);
}

TEST(Conv2d, GradientsMatchNumerical) {
  util::Rng rng(15);
  Conv2d conv("c", 2, 3, 3, 1, 1, rng);
  Flatten flat;
  Tensor in = RandomTensor(Shape{2, 2, 4, 4}, 16, 0.5f);
  const std::vector<std::int32_t> labels = {1, 0};
  auto loss_fn = [&] {
    Tensor h = conv.Forward(in, true);
    Tensor f = flat.Forward(h, true);
    // Use the first few features as logits via a fixed slice (cheap head).
    Tensor logits(Shape{2, 3});
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 3; ++c) {
        logits[static_cast<std::size_t>(b * 3 + c)] =
            f[static_cast<std::size_t>(b * 48 + c * 7)];
      }
    }
    return SoftmaxCrossEntropy(logits, labels).loss;
  };
  // Analytic path.
  Tensor h = conv.Forward(in, true);
  Tensor f = flat.Forward(h, true);
  Tensor logits(Shape{2, 3});
  for (int b = 0; b < 2; ++b) {
    for (int c = 0; c < 3; ++c) {
      logits[static_cast<std::size_t>(b * 3 + c)] =
          f[static_cast<std::size_t>(b * 48 + c * 7)];
    }
  }
  LossResult r = SoftmaxCrossEntropy(logits, labels);
  Tensor gf(f.shape());
  for (int b = 0; b < 2; ++b) {
    for (int c = 0; c < 3; ++c) {
      gf[static_cast<std::size_t>(b * 48 + c * 7)] =
          r.grad_logits[static_cast<std::size_t>(b * 3 + c)];
    }
  }
  Tensor gh = flat.Backward(gf);
  Tensor gin = conv.Backward(gh);
  auto params = conv.Params();
  CheckGradient(*params[0].value, *params[0].grad, loss_fn);
  CheckGradient(*params[1].value, *params[1].grad, loss_fn);
  CheckGradient(in, gin, loss_fn);
}

// ---------- Optimizer ----------

TEST(MomentumSgd, FirstStepIsPlainGradientStep) {
  MomentumOptions opt;
  opt.momentum = 0.9f;
  opt.weight_decay = 0.0f;
  MomentumSgd sgd(opt);
  Tensor w(Shape{2}, {1.0f, 2.0f});
  Tensor g(Shape{2}, {0.5f, -0.5f});
  std::vector<ParamRef> params = {{"w", &w, &g, true, false}};
  sgd.ApplyGradients(params, 0.1f);
  EXPECT_FLOAT_EQ(w[0], 1.0f - 0.05f);
  EXPECT_FLOAT_EQ(w[1], 2.0f + 0.05f);
}

TEST(MomentumSgd, VelocityAccumulates) {
  MomentumOptions opt;
  opt.momentum = 0.5f;
  opt.weight_decay = 0.0f;
  MomentumSgd sgd(opt);
  Tensor w(Shape{1}, {0.0f});
  Tensor g(Shape{1}, {1.0f});
  std::vector<ParamRef> params = {{"w", &w, &g, true, false}};
  sgd.ApplyGradients(params, 1.0f);  // v=1, w=-1
  sgd.ApplyGradients(params, 1.0f);  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(w[0], -2.5f);
  ASSERT_NE(sgd.velocity("w"), nullptr);
  EXPECT_FLOAT_EQ((*sgd.velocity("w"))[0], 1.5f);
}

TEST(MomentumSgd, WeightDecayOnlyWhereFlagged) {
  MomentumOptions opt;
  opt.momentum = 0.0f;
  opt.weight_decay = 0.1f;
  MomentumSgd sgd(opt);
  Tensor w1(Shape{1}, {1.0f}), w2(Shape{1}, {1.0f});
  Tensor g(Shape{1}, {0.0f});
  std::vector<ParamRef> params = {{"decayed", &w1, &g, true, true},
                                  {"plain", &w2, &g, true, false}};
  sgd.ApplyGradients(params, 1.0f);
  EXPECT_FLOAT_EQ(w1[0], 0.9f);
  EXPECT_FLOAT_EQ(w2[0], 1.0f);
}

// ---------- LR schedules ----------

TEST(CosineDecay, EndpointsAndMidpoint) {
  CosineDecay sched(0.1f, 0.001f, 1000);
  EXPECT_FLOAT_EQ(sched.At(0), 0.1f);
  EXPECT_NEAR(sched.At(500), (0.1f + 0.001f) / 2.0f, 1e-6);
  EXPECT_NEAR(sched.At(999), 0.001f, 1e-5);
  EXPECT_FLOAT_EQ(sched.At(5000), 0.001f);
}

TEST(CosineDecay, MonotoneNonIncreasing) {
  CosineDecay sched(0.1f, 0.001f, 200);
  float prev = 1.0f;
  for (int t = 0; t < 200; ++t) {
    const float lr = sched.At(t);
    EXPECT_LE(lr, prev + 1e-9f);
    prev = lr;
  }
}

TEST(CosineDecay, SweepsFullRangeForAnyBudget) {
  // The paper's methodology: fewer-step runs still sweep the whole range.
  for (std::int64_t budget : {250, 500, 1000}) {
    CosineDecay sched(0.1f, 0.001f, budget);
    EXPECT_FLOAT_EQ(sched.At(0), 0.1f);
    EXPECT_NEAR(sched.At(budget - 1), 0.001f, 1e-4);
  }
}

TEST(StepwiseDecay, ThreePhases) {
  StepwiseDecay sched(0.1f, 100);
  EXPECT_FLOAT_EQ(sched.At(0), 0.1f);
  EXPECT_FLOAT_EQ(sched.At(49), 0.1f);
  EXPECT_FLOAT_EQ(sched.At(50), 0.01f);
  EXPECT_FLOAT_EQ(sched.At(75), 0.001f);
}

TEST(ConstantLr, AlwaysSame) {
  ConstantLr sched(0.05f);
  EXPECT_FLOAT_EQ(sched.At(0), 0.05f);
  EXPECT_FLOAT_EQ(sched.At(12345), 0.05f);
}

// ---------- Model / end-to-end learning ----------

TEST(Model, ParamsAggregateAcrossLayers) {
  auto model = train::BuildMlp({4, {8}, 3, true}, 1);
  // fc1 W+b, bn gamma+beta, classifier W+b.
  EXPECT_EQ(model.Params().size(), 6u);
  EXPECT_EQ(model.NumParameters(), 4 * 8 + 8 + 8 + 8 + 8 * 3 + 3);
}

TEST(Model, CopyParamsMakesModelsIdentical) {
  auto a = train::BuildMlp({4, {8}, 3, true}, 1);
  auto b = train::BuildMlp({4, {8}, 3, true}, 2);  // different init
  b.CopyParamsFrom(a);
  Tensor in = RandomTensor(Shape{5, 4}, 3);
  Tensor out_a = a.Forward(in, false);
  Tensor out_b = b.Forward(in, false);
  EXPECT_EQ(tensor::MaxAbsDiff(out_a, out_b), 0.0f);
}

TEST(Model, SameSeedBuildsIdenticalModels) {
  auto a = train::BuildMlp({4, {8}, 3, true}, 9);
  auto b = train::BuildMlp({4, {8}, 3, true}, 9);
  Tensor in = RandomTensor(Shape{2, 4}, 5);
  EXPECT_EQ(tensor::MaxAbsDiff(a.Forward(in, false), b.Forward(in, false)),
            0.0f);
}

TEST(Model, LearnsTwoSpirals) {
  // End-to-end sanity: a small MLP separates the two-spiral dataset well
  // above chance with plain local training.
  auto data = data::MakeTwoSpirals(1024, 256, 17);
  auto model = train::BuildMlp({2, {64, 32}, 2, false}, 3);
  MomentumSgd sgd({0.9f, 0.0f});
  CosineDecay sched(0.1f, 0.001f, 1500);
  data::Sampler sampler(data.train, util::Rng(4), 0.0f);
  for (int step = 0; step < 1500; ++step) {
    auto batch = sampler.Next(32);
    model.TrainStep(batch.inputs, batch.labels);
    auto params = model.Params();
    sgd.ApplyGradients(params, sched.At(step));
  }
  const double acc = model.Evaluate(data.test.inputs, data.test.labels);
  EXPECT_GT(acc, 0.9);
}

TEST(Model, CnnForwardBackwardShapes) {
  auto model = train::BuildCnn({3, 8, 8, 4, 3, 16, 10}, 5);
  Tensor in = RandomTensor(Shape{2, 3, 8, 8}, 6);
  auto r = model.TrainStep(in, {1, 2});
  EXPECT_TRUE(std::isfinite(r.loss));
  for (const auto& p : model.Params()) {
    EXPECT_TRUE(std::isfinite(tensor::Sum(*p.grad))) << p.name;
  }
}

}  // namespace
}  // namespace threelc::nn
