// Transport tests: Connection framing over real sockets with partial
// reads/writes, bounded write queues, blocking-helper timeouts,
// connect-with-retry behaviour against dead and late-binding ports, and
// the TcpServer poll loop (accept / frame / disconnect callbacks).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "rpc/fault.h"
#include "rpc/transport.h"
#include "util/rng.h"

namespace threelc::rpc {
namespace {

util::ByteBuffer MakePayload(std::size_t n, std::uint8_t seed) {
  util::ByteBuffer payload;
  for (std::size_t i = 0; i < n; ++i) {
    payload.PushByte(static_cast<std::uint8_t>(seed + 31 * i));
  }
  return payload;
}

// A connected AF_UNIX pair gives deterministic, single-threaded control
// over both ends of a byte stream.
void MakeSocketPair(int fds[2]) {
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
}

TEST(Connection, FrameRoundTripOverSocketPair) {
  int fds[2];
  MakeSocketPair(fds);
  Connection a(fds[0]);
  Connection b(fds[1]);

  util::ByteBuffer payload = MakePayload(300, 1);
  ASSERT_TRUE(a.SendFrame(MsgType::kPush, 5, 2, payload.span()));
  ASSERT_EQ(a.FlushOutput(1000), Connection::IoResult::kOk);

  Frame frame;
  ASSERT_EQ(b.WaitFrame(&frame, 1000), Connection::IoResult::kOk);
  EXPECT_EQ(frame.header.type, MsgType::kPush);
  EXPECT_EQ(frame.header.step, 5u);
  EXPECT_EQ(frame.header.tensor, 2u);
  EXPECT_EQ(frame.payload, payload);
}

// A payload far larger than any socket buffer forces the write side
// through many partial send(2) calls and the read side through many
// partial recv(2) calls; the frame must still reassemble bit-exactly.
TEST(Connection, LargeFrameSurvivesPartialReadsAndWrites) {
  int fds[2];
  MakeSocketPair(fds);
  Connection a(fds[0]);
  Connection b(fds[1]);

  util::ByteBuffer payload = MakePayload(4u << 20, 7);  // 4 MiB
  ASSERT_TRUE(a.SendFrame(MsgType::kPull, 1, 0, payload.span()));
  EXPECT_TRUE(a.wants_write());  // could not fit in the socket buffer

  // Interleave non-blocking drains on both ends; neither side may block.
  Frame frame;
  bool got = false;
  for (int i = 0; i < 100000 && !got; ++i) {
    ASSERT_NE(a.HandleWritable(), Connection::IoResult::kError)
        << a.last_error();
    ASSERT_NE(b.HandleReadable(), Connection::IoResult::kError)
        << b.last_error();
    got = b.PopFrame(&frame);
  }
  ASSERT_TRUE(got);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_FALSE(a.wants_write());
}

TEST(Connection, BoundedWriteQueueRejectsOverflow) {
  int fds[2];
  MakeSocketPair(fds);
  Connection a(fds[0], nullptr, /*max_queued_bytes=*/4096);
  Connection b(fds[1]);

  util::ByteBuffer payload = MakePayload(2048, 3);
  // The peer never reads, so the queue fills; eventually SendFrame must
  // report backpressure instead of buffering without bound.
  bool rejected = false;
  for (int i = 0; i < 10000 && !rejected; ++i) {
    rejected = !a.SendFrame(MsgType::kPush, 0, 0, payload.span());
  }
  EXPECT_TRUE(rejected);
  EXPECT_FALSE(a.last_error().empty());
  (void)b;
}

// An injected `stall` freezes the endpoint: it stops reading AND stops
// flushing, but the socket stays open — the transport-level model of a
// SIGSTOP'd peer. Queued frames must count against the bounded write
// queue so memory stays bounded and SendFrame reports backpressure
// (rpc/backpressure_rejects), rather than growing the outbuf forever.
TEST(Connection, StalledEndpointTripsBackpressureNotMemoryGrowth) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  TransportMetrics metrics = TransportMetrics::RegisterIn(registry);

  int fds[2];
  MakeSocketPair(fds);
  Connection a(fds[0], &metrics, /*max_queued_bytes=*/4096);
  Connection b(fds[1]);

  FaultInjector injector(/*seed=*/5);
  std::string spec_error;
  ASSERT_TRUE(injector.AddRulesFromSpec("stall:push@1", &spec_error))
      << spec_error;
  a.set_fault_injector(&injector);

  util::ByteBuffer payload = MakePayload(1024, 5);
  // The triggering frame latches the stall; it queues but never flushes.
  ASSERT_TRUE(a.SendFrame(MsgType::kPush, 1, 0, payload.span()));
  EXPECT_TRUE(a.tx_stalled());
  EXPECT_TRUE(a.rx_blocked());
  EXPECT_FALSE(a.wants_write());  // frozen: never asks for POLLOUT

  bool rejected = false;
  for (int i = 0; i < 100 && !rejected; ++i) {
    rejected = !a.SendFrame(MsgType::kPush, 2, 0, payload.span());
  }
  EXPECT_TRUE(rejected);
  EXPECT_GE(metrics.backpressure_rejects->value(), 1.0);
  EXPECT_NE(a.last_error().find("write queue full"), std::string::npos)
      << a.last_error();
  // Bounded: the queue never exceeded its cap plus one in-flight frame.
  EXPECT_LE(a.queued_bytes(), 4096u + kFrameHeaderBytes + payload.size());
  (void)b;
}

// An injected one-way (tx) partition silently discards outbound frames —
// the app-level send "succeeds" — while the rx side stays live, the
// network shape that used to park a worker in pull-wait for the full
// step timeout.
TEST(Connection, TxPartitionDropsFramesSilentlyWhileRxStaysLive) {
  int fds[2];
  MakeSocketPair(fds);
  Connection a(fds[0]);
  Connection b(fds[1]);

  FaultInjector injector(/*seed=*/6);
  std::string spec_error;
  ASSERT_TRUE(injector.AddRulesFromSpec("partition:tx@1#*", &spec_error))
      << spec_error;
  a.set_fault_injector(&injector);

  util::ByteBuffer payload = MakePayload(64, 2);
  ASSERT_TRUE(a.SendFrame(MsgType::kPush, 1, 0, payload.span()));  // lost
  EXPECT_TRUE(a.tx_dropped());
  EXPECT_FALSE(a.rx_blocked());  // tx-only: the other direction is fine
  EXPECT_EQ(a.FlushOutput(100), Connection::IoResult::kOk);
  EXPECT_FALSE(a.wants_write());

  // Nothing arrives at the peer.
  Frame frame;
  EXPECT_EQ(b.WaitFrame(&frame, 100), Connection::IoResult::kError);

  // The reverse direction still delivers: b -> a is untouched.
  ASSERT_TRUE(b.SendFrame(MsgType::kPull, 3, 0, payload.span()));
  ASSERT_EQ(b.FlushOutput(1000), Connection::IoResult::kOk);
  ASSERT_EQ(a.WaitFrame(&frame, 1000), Connection::IoResult::kOk);
  EXPECT_EQ(frame.header.type, MsgType::kPull);
}

TEST(Connection, WaitFrameTimesOutAndCountsIt) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  TransportMetrics metrics = TransportMetrics::RegisterIn(registry);

  int fds[2];
  MakeSocketPair(fds);
  Connection a(fds[0], &metrics);
  Connection b(fds[1], &metrics);

  Frame frame;
  EXPECT_EQ(a.WaitFrame(&frame, 50), Connection::IoResult::kError);
  EXPECT_FALSE(a.last_error().empty());
  EXPECT_EQ(metrics.timeouts->value(), 1.0);
  (void)b;
}

TEST(Connection, PeerCloseSurfacesAsClosed) {
  int fds[2];
  MakeSocketPair(fds);
  Connection a(fds[0]);
  {
    Connection b(fds[1]);
    // b's destructor closes the socket.
  }
  Frame frame;
  EXPECT_EQ(a.WaitFrame(&frame, 1000), Connection::IoResult::kClosed);
}

TEST(Connection, MalformedBytesSurfaceAsParseError) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  TransportMetrics metrics = TransportMetrics::RegisterIn(registry);

  int fds[2];
  MakeSocketPair(fds);
  Connection a(fds[0]);
  Connection b(fds[1], &metrics);

  const char garbage[] = "this is definitely not a 3LCR frame header....";
  ASSERT_GT(::send(a.fd(), garbage, sizeof(garbage), 0), 0);
  Frame frame;
  EXPECT_EQ(b.WaitFrame(&frame, 1000), Connection::IoResult::kError);
  EXPECT_EQ(b.parse_error(), ParseError::kBadMagic);
  EXPECT_EQ(metrics.frame_errors->value(), 1.0);
}

TEST(Connection, WireByteCountersMatchTraffic) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  TransportMetrics metrics = TransportMetrics::RegisterIn(registry);

  int fds[2];
  MakeSocketPair(fds);
  Connection a(fds[0], &metrics);
  Connection b(fds[1], &metrics);

  util::ByteBuffer payload = MakePayload(100, 9);
  const double frame_bytes =
      static_cast<double>(kFrameHeaderBytes + payload.size());
  ASSERT_TRUE(a.SendFrame(MsgType::kHello, 0, 0, payload.span()));
  ASSERT_EQ(a.FlushOutput(1000), Connection::IoResult::kOk);
  Frame frame;
  ASSERT_EQ(b.WaitFrame(&frame, 1000), Connection::IoResult::kOk);

  EXPECT_EQ(metrics.wire_tx_bytes->value(), frame_bytes);
  EXPECT_EQ(metrics.wire_rx_bytes->value(), frame_bytes);
  EXPECT_EQ(metrics.wire_bytes->value(), 2 * frame_bytes);
  EXPECT_EQ(metrics.frames_tx->value(), 1.0);
  EXPECT_EQ(metrics.frames_rx->value(), 1.0);
}

TEST(ConnectWithRetry, DeadPortFailsAfterBoundedRetries) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  TransportMetrics metrics = TransportMetrics::RegisterIn(registry);

  RetryOptions retry;
  retry.max_attempts = 3;
  retry.initial_backoff_ms = 1;
  retry.max_backoff_ms = 2;
  std::string error;
  // Port 1 on loopback: reserved, nothing listens there in this container.
  const int fd = ConnectWithRetry("127.0.0.1", 1, retry, &metrics, &error);
  EXPECT_LT(fd, 0);
  EXPECT_NE(error.find("3 attempts"), std::string::npos) << error;
  EXPECT_EQ(metrics.connect_retries->value(), 2.0);  // attempts 2 and 3
}

// A wall-clock deadline caps the whole retry loop even when the attempt
// budget alone would keep it spinning much longer — the unified policy
// both initial connects and mid-run reconnects go through.
TEST(ConnectWithRetry, DeadlineCapsRetriesBeforeAttemptsExhaust) {
  RetryOptions retry;
  retry.max_attempts = 1000000;  // attempts alone would retry ~forever
  retry.initial_backoff_ms = 50;
  retry.max_backoff_ms = 50;
  retry.deadline_ms = 200;
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  const int fd = ConnectWithRetry("127.0.0.1", 1, retry, nullptr, &error);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_LT(fd, 0);
  // Generous ceiling: the loop must stop near the 200 ms deadline, not
  // anywhere near a million attempts.
  EXPECT_LT(elapsed, 5000);
  EXPECT_NE(error.find("deadline"), std::string::npos) << error;
  EXPECT_NE(error.find("200 ms"), std::string::npos) << error;
}

TEST(ConnectWithRetry, SucceedsOnceListenerAppears) {
  // Reserve an ephemeral port, free it, then bring the listener up only
  // after the client has already started retrying.
  std::string error;
  int port = 0;
  int probe = ListenOn("127.0.0.1", 0, &error, &port);
  ASSERT_GE(probe, 0) << error;
  ::close(probe);

  std::atomic<int> client_fd{-2};
  std::thread client([&] {
    RetryOptions retry;
    retry.max_attempts = 100;
    retry.initial_backoff_ms = 5;
    retry.max_backoff_ms = 20;
    std::string client_error;
    client_fd = ConnectWithRetry("127.0.0.1", port, retry, nullptr,
                                 &client_error);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  int listener = ListenOn("127.0.0.1", port, &error, nullptr);
  ASSERT_GE(listener, 0) << error;
  client.join();
  EXPECT_GE(client_fd.load(), 0);
  if (client_fd >= 0) ::close(client_fd);
  ::close(listener);
}

TEST(BackoffDelayMs, UnseededMatchesPlainExponentialSchedule) {
  RetryOptions retry;
  retry.initial_backoff_ms = 50;
  retry.max_backoff_ms = 2000;
  retry.multiplier = 2.0;
  EXPECT_EQ(BackoffDelayMs(retry, 1), 50);
  EXPECT_EQ(BackoffDelayMs(retry, 2), 100);
  EXPECT_EQ(BackoffDelayMs(retry, 3), 200);
  EXPECT_EQ(BackoffDelayMs(retry, 4), 400);
  EXPECT_EQ(BackoffDelayMs(retry, 7), 2000);   // capped
  EXPECT_EQ(BackoffDelayMs(retry, 20), 2000);  // stays capped
}

TEST(BackoffDelayMs, SeededJitterIsDeterministicAndBounded) {
  RetryOptions retry;
  retry.initial_backoff_ms = 100;
  retry.max_backoff_ms = 5000;
  retry.multiplier = 2.0;
  retry.jitter = 0.5;
  retry.jitter_seed = 0xC0FFEEu;

  bool any_jittered = false;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const int delay = BackoffDelayMs(retry, attempt);
    // Same options, same attempt -> same delay (no hidden state).
    EXPECT_EQ(delay, BackoffDelayMs(retry, attempt));
    RetryOptions plain = retry;
    plain.jitter_seed = 0;
    const int base = BackoffDelayMs(plain, attempt);
    EXPECT_GE(delay, static_cast<int>(base * 0.5));
    EXPECT_LE(delay, std::min(static_cast<int>(base * 1.5) + 1,
                              retry.max_backoff_ms));
    if (delay != base) any_jittered = true;
  }
  EXPECT_TRUE(any_jittered);
}

TEST(BackoffDelayMs, DistinctSeedsDesynchronizeSchedules) {
  RetryOptions a;
  a.jitter_seed = 1;
  RetryOptions b = a;
  b.jitter_seed = 2;
  bool differ = false;
  for (int attempt = 1; attempt <= 8 && !differ; ++attempt) {
    differ = BackoffDelayMs(a, attempt) != BackoffDelayMs(b, attempt);
  }
  EXPECT_TRUE(differ);
}

TEST(TcpServer, AcceptEchoDisconnectLifecycle) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  TransportMetrics metrics = TransportMetrics::RegisterIn(registry);

  TcpServer server(&metrics);
  std::string error;
  ASSERT_TRUE(server.Listen("127.0.0.1", 0, &error)) << error;
  ASSERT_GT(server.port(), 0);

  std::atomic<int> accepts{0};
  std::atomic<int> disconnects{0};
  server.on_accept = [&](Connection&) { ++accepts; };
  server.on_frame = [&](Connection& conn, Frame&& frame) {
    // Echo with the step bumped so the client can tell it came back.
    conn.SendFrame(frame.header.type, frame.header.step + 1,
                   frame.header.tensor, frame.payload.span());
  };
  server.on_disconnect = [&](Connection&, const std::string&) {
    ++disconnects;
  };

  std::atomic<bool> stop{false};
  std::thread server_thread([&] {
    while (!stop.load()) server.Poll(20);
  });

  {
    RetryOptions retry;
    std::string connect_error;
    const int fd = ConnectWithRetry("127.0.0.1", server.port(), retry,
                                    nullptr, &connect_error);
    ASSERT_GE(fd, 0) << connect_error;
    Connection client(fd);
    util::ByteBuffer payload = MakePayload(64, 4);
    ASSERT_TRUE(client.SendFrame(MsgType::kPush, 10, 1, payload.span()));
    ASSERT_EQ(client.FlushOutput(2000), Connection::IoResult::kOk);
    Frame echoed;
    ASSERT_EQ(client.WaitFrame(&echoed, 2000), Connection::IoResult::kOk);
    EXPECT_EQ(echoed.header.step, 11u);
    EXPECT_EQ(echoed.payload, payload);
    // client destructor closes -> server sees a disconnect
  }

  for (int i = 0; i < 200 && disconnects.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  server_thread.join();
  EXPECT_EQ(accepts.load(), 1);
  EXPECT_EQ(disconnects.load(), 1);
  EXPECT_EQ(server.connection_count(), 0u);
  EXPECT_EQ(metrics.disconnects->value(), 1.0);
  server.Close();
}

TEST(ListenOn, RejectsBadHost) {
  std::string error;
  int port = 0;
  EXPECT_LT(ListenOn("definitely.not.an.ip", 0, &error, &port), 0);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace threelc::rpc
