// WAN training: the paper's motivating scenario (§1) — distributed
// training over a bandwidth-constrained wide-area link (geo-distributed
// data, regulatory borders, metered connections).
//
// Trains the same model with the 32-bit float baseline and with 3LC, then
// reports traffic and estimated wall-clock time on a 10 Mbps WAN.
//
// Build & run:  ./build/examples/wan_training
//   [--steps=300] [--trace-out t.json] [--metrics-out m.jsonl]
//   [--metrics-port=9109] [--flight-out=flight.jsonl] [--log-level=debug]
// Telemetry (when requested) records the 3LC s=1.00 run.
#include <cstdio>
#include <memory>

#include "obs/telemetry.h"
#include "train/experiment.h"
#include "util/flags.h"

using namespace threelc;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  obs::ApplyLogLevelFlag(flags);
  auto config = train::DefaultExperiment();
  config.standard_steps = flags.GetInt("steps", 300);  // demo-sized run
  config.trainer.eval_every = 100;
  auto data = data::MakeTeacherDataset(config.data);

  // Attach telemetry (if requested) to the first 3LC run below.
  std::unique_ptr<obs::Telemetry> telemetry;
  const obs::TelemetryOptions tel_opts = obs::TelemetryOptionsFromFlags(flags);
  if (!tel_opts.trace_path.empty() || !tel_opts.metrics_path.empty() ||
      tel_opts.monitoring_enabled()) {
    telemetry = std::make_unique<obs::Telemetry>(tel_opts);
  }
  const auto wan = net::LinkConfig::TenMbps();

  std::printf("Synchronous data-parallel training: %d workers, batch %lld, "
              "%lld steps, 10 Mbps WAN\n\n",
              config.trainer.num_workers,
              static_cast<long long>(config.trainer.batch_size),
              static_cast<long long>(config.standard_steps));

  struct Row {
    const char* label;
    compress::CodecConfig codec;
    bool instrumented;  // attach --trace-out / --metrics-out telemetry
  };
  const Row rows[] = {
      {"32-bit float (baseline)", compress::CodecConfig::Float32(), false},
      {"3LC s=1.00", compress::CodecConfig::ThreeLC(1.00f), true},
      {"3LC s=1.75", compress::CodecConfig::ThreeLC(1.75f), false},
  };

  std::printf("%-26s %12s %14s %16s %14s\n", "Design", "accuracy",
              "traffic (MB)", "time @10Mbps", "vs baseline");
  double baseline_time = 0.0;
  for (const auto& row : rows) {
    config.trainer.telemetry = row.instrumented ? telemetry.get() : nullptr;
    auto result =
        train::RunDesign(config, row.codec, config.standard_steps, data);
    const auto tm = train::PaperTimeModel(wan, result.model_parameters);
    const double seconds = train::EstimateTrainingSeconds(result, tm);
    if (baseline_time == 0.0) baseline_time = seconds;
    std::printf("%-26s %11.2f%% %14.1f %13.1f min %13.2fx\n", row.label,
                result.final_test_accuracy * 100.0,
                static_cast<double>(result.TotalBytes()) / 1e6,
                seconds / 60.0, baseline_time / seconds);
  }

  std::printf("\n3LC keeps accuracy while cutting WAN time by an order of "
              "magnitude;\nraise s toward 1.9 for metered links where every "
              "byte counts.\n");
  return 0;
}
