// Quickstart: compress a gradient tensor with 3LC in a few lines.
//
//   1. Build a codec (3-value quantization + quartic + zero-run encoding).
//   2. Make a per-tensor context (holds the error-accumulation buffer).
//   3. Encode / decode and inspect sizes and error bounds.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "compress/factory.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

using namespace threelc;

int main() {
  // A synthetic "gradient": zero-centred values, a few large entries.
  util::Rng rng(1);
  tensor::Tensor grad(tensor::Shape{256, 128});  // one layer's weights
  tensor::FillNormal(grad, rng, 0.0f, 0.01f);

  // --- 1. Build the codec. s is the compression-level knob in [1, 2).
  auto codec = compress::MakeCompressor(compress::CodecConfig::ThreeLC(1.75f));

  // --- 2. One context per tensor per direction. It owns the error
  //        accumulation buffer that carries quantization error to the next
  //        training step.
  auto ctx = codec->MakeContext(grad.shape());

  // --- 3. Encode.
  util::ByteBuffer payload;
  codec->Encode(grad, *ctx, payload);

  const std::size_t raw_bytes = grad.byte_size();
  std::printf("tensor: %lld values (%zu bytes as float32)\n",
              static_cast<long long>(grad.num_elements()), raw_bytes);
  std::printf("3LC payload: %zu bytes  ->  %.1fx compression, %.3f bits per "
              "value\n",
              payload.size(),
              compress::CompressionRatio(
                  static_cast<std::size_t>(grad.num_elements()),
                  payload.size()),
              compress::BitsPerValue(
                  static_cast<std::size_t>(grad.num_elements()),
                  payload.size()));

  // --- 4. Decode (receiver side: the shape is known from the model).
  tensor::Tensor decoded(grad.shape());
  util::ByteReader reader(payload);
  codec->Decode(reader, decoded);

  std::printf("max |error| = %.6f (bound: s*max|grad|/2 = %.6f)\n",
              tensor::MaxAbsDiff(grad, decoded),
              1.75f * tensor::MaxAbs(grad) / 2.0f);

  // --- 5. The error is not lost: it stays in the context and is folded
  //        into the next step's encode. Sending the *same* gradient again
  //        transmits the previously-withheld remainder.
  util::ByteBuffer second;
  codec->Encode(grad, *ctx, second);
  tensor::Tensor second_decoded(grad.shape());
  util::ByteReader reader2(second);
  codec->Decode(reader2, second_decoded);
  tensor::Tensor total = decoded;
  tensor::Add(total, second_decoded);
  tensor::Tensor twice = grad;
  tensor::Scale(twice, 2.0f);
  std::printf("after 2 sends of the same gradient, cumulative rmse vs 2*grad "
              "= %.6f\n",
              tensor::Rmse(total, twice));
  return 0;
}
