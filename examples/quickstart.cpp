// Quickstart: compress a gradient tensor with 3LC in a few lines, then run
// a short distributed training loop with full telemetry.
//
//   1. Build a codec (3-value quantization + quartic + zero-run encoding).
//   2. Make a per-tensor context (holds the error-accumulation buffer).
//   3. Encode / decode and inspect sizes and error bounds.
//   4. Train for --steps steps over --workers workers, writing a Chrome
//      trace (--trace-out) and per-step JSONL metrics (--metrics-out),
//      optionally serving live monitoring endpoints (--metrics-port).
//
// Build & run:
//   ./build/examples/quickstart \
//     --trace-out trace.json --metrics-out metrics.jsonl
// Open trace.json in Perfetto / chrome://tracing; plot metrics.jsonl with
//   python3 tools/plot_results.py metrics metrics.jsonl
// Or watch it live:
//   ./build/examples/quickstart --metrics-port 9109 --steps 2000 &
//   curl localhost:9109/metricsz   # also /healthz /statusz /flightz
#include <cstdio>
#include <exception>
#include <memory>

#include "compress/factory.h"
#include "obs/http_server.h"
#include "obs/telemetry.h"
#include "tensor/tensor_ops.h"
#include "train/experiment.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace threelc;

namespace {

// Part 2 of the demo: a short instrumented training run (paper Fig. 2's
// full worker/server loop) that exercises every telemetry surface.
int RunInstrumentedTraining(const util::Flags& flags) {
  obs::TelemetryOptions opts = obs::TelemetryOptionsFromFlags(flags);
  if (opts.trace_path.empty() && opts.metrics_path.empty() &&
      !opts.monitoring_enabled()) {
    std::printf(
        "\n(no --trace-out / --metrics-out / --metrics-port given; skipping "
        "the instrumented training demo)\n");
    return 0;
  }

  train::ExperimentConfig config = train::SmallExperiment();
  config.trainer.num_workers =
      static_cast<int>(flags.GetInt("workers", config.trainer.num_workers));
  const std::int64_t steps = flags.GetInt("steps", 50);
  config.trainer.eval_every = 0;  // final eval only; keeps the run short

  std::unique_ptr<obs::Telemetry> telemetry;
  try {
    telemetry = std::make_unique<obs::Telemetry>(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry setup failed: %s\n", e.what());
    return 1;
  }
  config.trainer.telemetry = telemetry.get();
  if (telemetry->http_server() != nullptr) {
    std::printf("\nlive monitoring on port %d: /metricsz /healthz /statusz "
                "/flightz\n",
                telemetry->http_server()->port());
  }

  std::printf("\ntraining: %d workers, %lld steps, codec %s\n",
              config.trainer.num_workers, static_cast<long long>(steps),
              "3LC (s=1.00)");
  const data::SyntheticData data = data::MakeTeacherDataset(config.data);
  train::TrainResult result =
      train::RunDesign(config, compress::CodecConfig::ThreeLC(1.0f), steps,
                       data);
  std::printf("final loss %.4f, test accuracy %.3f, %.3f bits/value\n",
              result.final_train_loss, result.final_test_accuracy,
              result.CodecBitsPerValue());
  telemetry->Flush();
  if (!opts.trace_path.empty()) {
    std::printf("trace written to %s (open in Perfetto)\n",
                opts.trace_path.c_str());
  }
  if (!opts.metrics_path.empty()) {
    std::printf("metrics written to %s\n", opts.metrics_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  obs::ApplyLogLevelFlag(flags);
  // A synthetic "gradient": zero-centred values, a few large entries.
  util::Rng rng(1);
  tensor::Tensor grad(tensor::Shape{256, 128});  // one layer's weights
  tensor::FillNormal(grad, rng, 0.0f, 0.01f);

  // --- 1. Build the codec. s is the compression-level knob in [1, 2).
  auto codec = compress::MakeCompressor(compress::CodecConfig::ThreeLC(1.75f));

  // --- 2. One context per tensor per direction. It owns the error
  //        accumulation buffer that carries quantization error to the next
  //        training step.
  auto ctx = codec->MakeContext(grad.shape());

  // --- 3. Encode.
  util::ByteBuffer payload;
  codec->Encode(grad, *ctx, payload);

  const std::size_t raw_bytes = grad.byte_size();
  std::printf("tensor: %lld values (%zu bytes as float32)\n",
              static_cast<long long>(grad.num_elements()), raw_bytes);
  std::printf("3LC payload: %zu bytes  ->  %.1fx compression, %.3f bits per "
              "value\n",
              payload.size(),
              compress::CompressionRatio(
                  static_cast<std::size_t>(grad.num_elements()),
                  payload.size()),
              compress::BitsPerValue(
                  static_cast<std::size_t>(grad.num_elements()),
                  payload.size()));

  // --- 4. Decode (receiver side: the shape is known from the model).
  tensor::Tensor decoded(grad.shape());
  util::ByteReader reader(payload);
  codec->Decode(reader, decoded);

  std::printf("max |error| = %.6f (bound: s*max|grad|/2 = %.6f)\n",
              tensor::MaxAbsDiff(grad, decoded),
              1.75f * tensor::MaxAbs(grad) / 2.0f);

  // --- 5. The error is not lost: it stays in the context and is folded
  //        into the next step's encode. Sending the *same* gradient again
  //        transmits the previously-withheld remainder.
  util::ByteBuffer second;
  codec->Encode(grad, *ctx, second);
  tensor::Tensor second_decoded(grad.shape());
  util::ByteReader reader2(second);
  codec->Decode(reader2, second_decoded);
  tensor::Tensor total = decoded;
  tensor::Add(total, second_decoded);
  tensor::Tensor twice = grad;
  tensor::Scale(twice, 2.0f);
  std::printf("after 2 sends of the same gradient, cumulative rmse vs 2*grad "
              "= %.6f\n",
              tensor::Rmse(total, twice));

  // --- 6. The same codec inside a full distributed training loop, with
  //        telemetry: spans, metrics, and per-step JSONL records.
  return RunInstrumentedTraining(flags);
}
