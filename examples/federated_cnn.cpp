// Federated-style CNN training: a convolutional model on image-shaped
// synthetic data, trained across simulated edge workers whose uplinks are
// metered — the paper's mobile/federated motivation (§1), exercising 4-D
// conv-kernel state-change tensors through the codec.
//
// Build & run:  ./build/examples/federated_cnn
//   [--trace-out t.json] [--metrics-out m.jsonl] [--metrics-port 9109]
//   [--flight-out flight.jsonl] [--log-level debug]
#include <cstdio>
#include <exception>
#include <memory>

#include "data/synthetic.h"
#include "obs/telemetry.h"
#include "train/experiment.h"
#include "train/model_zoo.h"
#include "train/trainer.h"
#include "util/flags.h"

using namespace threelc;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  obs::ApplyLogLevelFlag(flags);
  // 8x8x3 synthetic "photos" that stay on device.
  data::SyntheticConfig data_cfg;
  data_cfg.num_train = 2048;
  data_cfg.num_test = 512;
  data_cfg.input_dim = 192;  // 3*8*8
  data_cfg.num_classes = 10;
  data_cfg.seed = 7;
  auto flat = data::MakeTeacherDataset(data_cfg);
  data::SyntheticData images;
  images.train = data::AsImages(flat.train, 3, 8, 8);
  images.test = data::AsImages(flat.test, 3, 8, 8);

  train::CnnSpec spec;
  spec.conv_filters = 6;
  spec.dense_hidden = 32;

  train::TrainerConfig tc;
  tc.num_workers = 4;  // edge devices
  tc.batch_size = 16;
  tc.total_steps = 150;
  tc.eval_every = 50;
  tc.min_compress_elems = 100;
  tc.codec = compress::CodecConfig::ThreeLC(1.9f);  // metered uplink: max s
  tc.lr_max = 0.05f;
  tc.lr_min = 0.001f;

  // Same monitoring surface as every other binary: --metrics-port serves
  // /metricsz, /healthz, /statusz, /flightz while the devices train.
  std::unique_ptr<obs::Telemetry> telemetry;
  const obs::TelemetryOptions tel_opts = obs::TelemetryOptionsFromFlags(flags);
  if (!tel_opts.trace_path.empty() || !tel_opts.metrics_path.empty() ||
      tel_opts.monitoring_enabled()) {
    try {
      telemetry = std::make_unique<obs::Telemetry>(tel_opts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "telemetry setup failed: %s\n", e.what());
      return 1;
    }
    tc.telemetry = telemetry.get();
  }

  std::printf("Federated CNN: %d devices, conv(3x3x%lld) + dense model, "
              "3LC s=1.9 on a metered uplink\n\n",
              tc.num_workers, static_cast<long long>(spec.conv_filters));

  train::DistributedTrainer trainer(
      tc, [&spec] { return train::BuildCnn(spec, 99); }, images.train,
      images.test);

  std::printf("tensor plan (compressed tensors carry conv kernels):\n");
  for (const auto& e : trainer.plan().entries()) {
    std::printf("  %-20s %-14s %s\n", e.name.c_str(),
                e.shape.ToString().c_str(),
                e.compressed ? "3LC" : "raw (small-layer bypass)");
  }

  auto result = trainer.Run();
  std::printf("\nfinal test accuracy: %.1f%% (chance 10%%)\n",
              result.final_test_accuracy * 100.0);
  std::printf("total uplink+downlink traffic: %.2f MB (float32 would be "
              "%.2f MB)\n",
              static_cast<double>(result.TotalBytes()) / 1e6,
              static_cast<double>(result.TotalValues()) * 4.0 / 1e6);
  std::printf("average compression: %.1fx, %.3f bits per state change\n",
              result.AverageCompressionRatio(), result.AverageBitsPerValue());
  return 0;
}
