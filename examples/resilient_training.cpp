// Resilient training: stragglers, backup workers, and checkpointing in one
// run — the operational side of long bandwidth-constrained training jobs.
//
// Usage:
//   ./build/examples/resilient_training [--steps=400] [--workers=8]
//       [--backup=1] [--straggler-prob=0.15] [--s=1.5]
//       [--checkpoint=/tmp/3lc_demo.ckpt] [--log-level=debug]
//       [--metrics-port=9109] [--flight-out=flight.jsonl]
//
// Phase 1 trains with stragglers and backup workers, saving a checkpoint;
// phase 2 restores it into a fresh model and verifies the restored
// accuracy, then fine-tunes a little further. With --metrics-port the
// straggler-heavy phase 1 can be watched live (/statusz shows contributors
// per step dropping when backups kick in).
#include <cstdio>
#include <exception>
#include <memory>

#include "nn/checkpoint.h"
#include "obs/telemetry.h"
#include "train/experiment.h"
#include "util/flags.h"

using namespace threelc;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  obs::ApplyLogLevelFlag(flags);
  const std::int64_t steps = flags.GetInt("steps", 400);
  const int workers = static_cast<int>(flags.GetInt("workers", 8));
  const int backup = static_cast<int>(flags.GetInt("backup", 1));
  const double straggler_prob = flags.GetDouble("straggler-prob", 0.15);
  const float s = static_cast<float>(flags.GetDouble("s", 1.5));
  const std::string ckpt_path =
      flags.GetString("checkpoint", "/tmp/3lc_demo.ckpt");

  auto config = train::DefaultExperiment();
  config.trainer.num_workers = workers;
  config.trainer.backup_workers = backup;
  config.trainer.straggler_prob = straggler_prob;
  config.trainer.straggler_slowdown = 6.0;
  config.trainer.eval_every = steps / 4;
  auto data = data::MakeTeacherDataset(config.data);

  std::printf("Phase 1: %d workers (%d backup), %.0f%% straggler "
              "probability, 3LC s=%.2f, %lld steps\n",
              workers, backup, straggler_prob * 100.0, s,
              static_cast<long long>(steps));

  const auto codec = compress::CodecConfig::ThreeLC(s);
  train::TrainerConfig tc = config.trainer;
  tc.codec = codec;
  tc.total_steps = steps;
  std::unique_ptr<obs::Telemetry> telemetry;
  const obs::TelemetryOptions tel_opts = obs::TelemetryOptionsFromFlags(flags);
  if (!tel_opts.trace_path.empty() || !tel_opts.metrics_path.empty() ||
      tel_opts.monitoring_enabled()) {
    try {
      telemetry = std::make_unique<obs::Telemetry>(tel_opts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "telemetry setup failed: %s\n", e.what());
      return 1;
    }
    tc.telemetry = telemetry.get();
  }
  const auto spec = config.model;
  const auto model_seed = config.model_seed;
  train::DistributedTrainer trainer(
      tc, [&spec, model_seed] { return train::BuildMlp(spec, model_seed); },
      data.train, data.test);
  auto result = trainer.Run();

  double mean_wait = 0.0;
  for (const auto& rec : result.steps) mean_wait += rec.compute_multiplier;
  mean_wait /= static_cast<double>(result.steps.size());
  std::printf("  accuracy %.2f%%, traffic %.1f MB, mean barrier wait "
              "multiplier %.2f\n",
              result.final_test_accuracy * 100.0,
              static_cast<double>(result.TotalBytes()) / 1e6, mean_wait);

  nn::SaveCheckpoint(trainer.global_model(), ckpt_path);
  std::printf("  checkpoint saved to %s\n", ckpt_path.c_str());

  // --- Phase 2: restore into a fresh process/model and verify.
  std::printf("\nPhase 2: restore and verify\n");
  auto restored = train::BuildMlp(config.model, /*seed=*/777);  // fresh init
  nn::LoadCheckpoint(restored, ckpt_path);
  auto eval_batches = data::EvalBatches(data.test, 256);
  std::size_t correct = 0, total = 0;
  for (const auto& batch : eval_batches) {
    tensor::Tensor logits = restored.Forward(batch.inputs, false);
    correct += static_cast<std::size_t>(
        nn::Accuracy(logits, batch.labels) *
            static_cast<double>(batch.labels.size()) +
        0.5);
    total += batch.labels.size();
  }
  const double restored_acc =
      static_cast<double>(correct) / static_cast<double>(total);
  std::printf("  restored accuracy %.2f%% (trained model: %.2f%%)\n",
              restored_acc * 100.0, result.final_test_accuracy * 100.0);
  if (std::abs(restored_acc - result.final_test_accuracy) > 1e-9) {
    std::printf("  WARNING: restored accuracy differs from trained model\n");
    return 1;
  }
  std::printf("  checkpoint round trip exact.\n");
  return 0;
}
