// Real multi-process distributed training over TCP (rpc::RpcServer /
// rpc::RpcWorker), producing bitwise-identical results to the in-process
// DistributedTrainer for the same seed, codec, and step count.
//
// Modes:
//   --spawn N            fork N worker processes, run the server in this
//                        process over loopback (the default, N=3)
//   --role server        run only the parameter server (then start workers
//                        elsewhere with --role worker --port <port>)
//   --role worker        run one worker; needs --worker-id and --port
//
// Common knobs: --steps, --workers, --batch-size, --codec none|3lc, --s,
// --block-codec store|lz|rans|lz+rans (second-stage lossless byte codec
// over the wire payloads and checkpoint files; default store = off),
// --seed, --host, --port. Outputs: --checkpoint-out writes the final global
// model (CRC32C-protected checkpoint); --compare re-runs the same training
// in-process and verifies the parameters match bit for bit; --linger-ms
// keeps the process (and the --metrics-port HTTP endpoints) alive after
// training so a scraper can read final counters.
//
// Fault-tolerance / chaos knobs:
//   --grace-ms N         server holds a dead worker's barrier slot open N ms
//                        for a REJOIN before evicting it (0 = strict)
//   --replay-steps N     pull-replay ring depth for rejoiners (default 8)
//   --kill-step K --kill-worker W
//                        worker W simulates a crash after completing step K:
//                        writes a v3 checkpoint (model + EA buffers +
//                        sampler cursor + step counter) and drops the socket
//   --restart-killed     (default true) the parent restarts the killed
//                        worker from its checkpoint; it REJOINs and the run
//                        finishes bitwise identical to a fault-free one
//   --state-dir DIR      where crash checkpoints are written (default ".")
//   --inject SPEC        worker-side fault-injection spec, e.g.
//                        "corrupt:push@3" or "delay100:push@any#*"
//   --inject-worker W    apply --inject to worker W only (default -1 =
//                        every worker) — e.g. delay one worker's pushes to
//                        make it the fleet's straggler on /clusterz
//   --inject-server SPEC same, attached to the server's connections
//   --inject-seed N      seed for the deterministic fault schedules
//   --max-reconnects N   per-worker mid-run reconnect budget (default 5)
//   --lease-ms N         liveness lease (protocol v6): a peer silent for N ms
//                        is declared hung — the server routes the expiry
//                        through the grace/evict path, a worker force-closes
//                        and reconnects. Both sides beacon HEARTBEAT frames
//                        when idle so a healthy-but-quiet peer never trips
//                        it. 0 (default) disables leases entirely
//   --heartbeat-ms N     idle beacon cadence (default 0 = lease-ms / 4)
//   --sigstop-worker W@STEP
//                        spawn mode: freeze worker W with SIGSTOP once the
//                        server has completed STEP steps — a real hung
//                        process, socket open but nothing flowing, which
//                        only the lease layer can detect
//   --sigcont-after-ms N thaw the SIGSTOP'd worker N ms later (default
//                        3000); depending on --grace-ms it then REJOINs
//                        (grace still open) or exits evicted
//
// Server crash recovery:
//   --server-checkpoint PATH
//                        enable the write-ahead server checkpoint (model +
//                        aggregation/EA state + replay ring + membership +
//                        epoch), written atomically every
//                        --server-checkpoint-every steps (default 1)
//   --kill-server-step K server simulates a crash after completing step K
//                        (checkpoint already on disk); in --spawn mode the
//                        supervisor resumes a fresh incarnation from the
//                        checkpoint on the same port and the workers REJOIN
//                        against the bumped epoch — the run still finishes
//                        bitwise identical to a fault-free one
//   --restart-server     (default true) whether --spawn resumes the killed
//                        server; --role server instead takes --resume to
//                        restart manually from --server-checkpoint
//
// Storage-fault drills (checkpoint generations live at
// "<server-checkpoint>.g<N>"; resume falls back past bad ones):
//   --server-checkpoint-retain N
//                        checkpoint generations kept on disk (default 2)
//   --fs-fault SPEC      server-side filesystem fault spec, e.g.
//                        "enospc:write@any#*" (disk full from the first
//                        write on), "eio:fsync@2", "torn:rename@1" (the
//                        rename is swallowed and the server dies at the
//                        torn-write point); grammar in util/fs.h. Seeded
//                        by --inject-seed; one injector instance spans
//                        server incarnations so call counters keep
//                        advancing across restarts
//   --kill-server-at-checkpoint K
//                        server dies between step K's checkpoint write
//                        and its fan-out (the window where generation
//                        fallback is bitwise-safe); the supervisor
//                        resumes it like --kill-server-step
//   --corrupt-newest-on-resume
//                        (spawn mode) flip one byte in the newest
//                        checkpoint generation before the first resume,
//                        forcing the last-good fallback path
//
// SIGTERM/SIGINT: every role stops gracefully — the in-flight step is
// abandoned cleanly, a resumable checkpoint is written (server: the server
// checkpoint; worker: its v3 crash checkpoint in --state-dir), telemetry
// and the flight recorder are flushed, and the process exits 0.
//
// Examples:
//   ./build/examples/distributed_training --spawn 3 --steps 20 --codec 3lc
//       --compare --metrics-port 9109 --linger-ms 2000
//   ./build/examples/distributed_training --spawn 3 --steps 20 --codec 3lc
//       --grace-ms 10000 --kill-step 7 --kill-worker 1 --compare
//   ./build/examples/distributed_training --role server --port 7171 &
//   ./build/examples/distributed_training --role worker --worker-id 0
//       --port 7171
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "blockcodec/block_codec.h"
#include "compress/factory.h"
#include "nn/checkpoint.h"
#include "obs/http_server.h"
#include "obs/telemetry.h"
#include "rpc/fault.h"
#include "rpc/runtime.h"
#include "util/fs.h"
#include "rpc/transport.h"
#include "train/experiment.h"
#include "train/model_zoo.h"
#include "train/trainer.h"
#include "util/crc32.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace threelc;

namespace {

// A worker that exits with this code crashed on purpose (--kill-step); the
// parent treats it as restartable, every other nonzero status as a failure.
constexpr int kSimulatedCrashExit = 42;

// Flipped by the SIGTERM/SIGINT handler; polled by both runtime roles
// (RpcServer/RpcWorker stop_flag) and by the spawn-mode supervisor.
std::atomic<bool> g_stop{false};

extern "C" void HandleStopSignal(int) {
  g_stop.store(true, std::memory_order_release);
}

void InstallStopHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking poll() must wake with EINTR
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

// Everything both roles must agree on, derived from the same flags in
// every process.
struct Setup {
  train::ExperimentConfig config;
  data::SyntheticData data;
  // Second-stage lossless block codec, negotiated in the handshake; both
  // roles derive it from the same --block-codec flag.
  std::string block_codec = "store";
};

Setup MakeSetup(const util::Flags& flags, int num_workers) {
  Setup setup;
  setup.config = train::SmallExperiment();
  train::TrainerConfig& tc = setup.config.trainer;
  tc.num_workers = num_workers;
  tc.total_steps = flags.GetInt("steps", 20);
  tc.batch_size = flags.GetInt("batch-size", tc.batch_size);
  tc.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));
  tc.eval_every = 0;
  const std::string codec = flags.GetString("codec", "3lc");
  if (codec == "none") {
    tc.codec = compress::CodecConfig::Float32();
  } else if (codec == "3lc") {
    tc.codec = compress::CodecConfig::ThreeLC(
        static_cast<float>(flags.GetDouble("s", 1.0)));
  } else {
    THREELC_CHECK_MSG(false, "unknown --codec '" << codec
                                                 << "' (want none|3lc)");
  }
  setup.block_codec = flags.GetString("block-codec", "store");
  THREELC_CHECK_MSG(blockcodec::Find(setup.block_codec) != nullptr,
                    "unknown --block-codec '"
                        << setup.block_codec << "' (want "
                        << blockcodec::KnownNames() << ")");
  setup.data = data::MakeTeacherDataset(setup.config.data);
  return setup;
}

std::uint32_t ModelHash(nn::Model& model) {
  std::uint32_t crc = util::Crc32c(nullptr, 0);
  for (const nn::ParamRef& param : model.Params()) {
    crc = util::Crc32cExtend(crc, param.value->data(),
                             param.value->byte_size());
  }
  for (const tensor::Tensor* buffer : model.Buffers()) {
    crc = util::Crc32cExtend(crc, buffer->data(), buffer->byte_size());
  }
  return crc;
}

bool ModelsBitwiseEqual(nn::Model& a, nn::Model& b) {
  auto pa = a.Params(), pb = b.Params();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].value->byte_size() != pb[i].value->byte_size() ||
        std::memcmp(pa[i].value->data(), pb[i].value->data(),
                    pa[i].value->byte_size()) != 0) {
      return false;
    }
  }
  auto ba = a.Buffers(), bb = b.Buffers();
  if (ba.size() != bb.size()) return false;
  for (std::size_t i = 0; i < ba.size(); ++i) {
    if (ba[i]->byte_size() != bb[i]->byte_size() ||
        std::memcmp(ba[i]->data(), bb[i]->data(), ba[i]->byte_size()) != 0) {
      return false;
    }
  }
  return true;
}

// Per-worker fault-tolerance knobs, all defaulting to "behave like PR 3".
struct WorkerChaos {
  std::int64_t exit_after_step = -1;  // simulate a crash after this step
  std::string checkpoint_path;  // written at the crash / read on rejoin
  bool rejoin = false;          // resume via REJOIN from checkpoint_path
  int max_reconnects = 5;
  std::string inject_spec;
  std::uint64_t inject_seed = 0;
  std::string stop_checkpoint_path;  // written on SIGTERM/SIGINT
  int lease_ms = 0;
  int heartbeat_ms = 0;
};

int RunWorker(const Setup& setup, int worker_id, const std::string& host,
              int port, obs::Telemetry* telemetry,
              const WorkerChaos& chaos) {
  const train::TrainerConfig& tc = setup.config.trainer;
  nn::Model model =
      train::BuildMlp(setup.config.model, setup.config.model_seed);

  // A restarted worker resumes from the v3 checkpoint its previous life
  // wrote at the simulated crash: model tensors first (before the
  // ps::Worker caches parameter pointers), then the codec EA buffers and
  // the sampler cursor once those objects exist.
  nn::TrainState resume;
  const bool resuming = chaos.rejoin && !chaos.checkpoint_path.empty();
  if (resuming) {
    nn::LoadCheckpointState(model, &resume, chaos.checkpoint_path);
  }

  const ps::TensorPlan plan =
      ps::TensorPlan::FromParams(model.Params(), tc.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(tc.codec));
  ps::Worker ps_worker(worker_id, model, plan, codec);

  // Reproduce DistributedTrainer's sampler seeding exactly: worker w uses
  // the (w+1)-th Fork of one seeder — this is what makes the TCP run
  // bitwise identical to the in-process run.
  util::Rng seeder(tc.seed);
  util::Rng rng = seeder.Fork();
  for (int i = 0; i < worker_id; ++i) rng = seeder.Fork();
  data::Sampler sampler(setup.data.train, rng, tc.augment_noise);

  if (resuming) {
    try {
      util::ByteReader codec_reader(util::ByteSpan(
          resume.codec_state.data(), resume.codec_state.size()));
      ps_worker.LoadCodecState(codec_reader);
      util::ByteReader sampler_reader(util::ByteSpan(
          resume.sampler_state.data(), resume.sampler_state.size()));
      sampler.LoadState(sampler_reader);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "worker %d: cannot resume from %s: %s\n",
                   worker_id, chaos.checkpoint_path.c_str(), e.what());
      return 1;
    }
    std::printf("worker %d: resuming from %s at step %llu\n", worker_id,
                chaos.checkpoint_path.c_str(),
                static_cast<unsigned long long>(resume.next_step));
    std::fflush(stdout);
  }

  rpc::FaultInjector injector(chaos.inject_seed);
  rpc::FaultInjector* fault = nullptr;
  if (!chaos.inject_spec.empty()) {
    std::string spec_error;
    if (!injector.AddRulesFromSpec(chaos.inject_spec, &spec_error)) {
      std::fprintf(stderr, "worker %d: bad --inject spec: %s\n", worker_id,
                   spec_error.c_str());
      return 1;
    }
    fault = &injector;
  }

  rpc::RpcWorkerConfig wc;
  wc.host = host;
  wc.port = port;
  wc.worker_id = worker_id;
  wc.batch_size = tc.batch_size;
  wc.telemetry = telemetry;
  wc.start_step = resuming ? static_cast<std::int64_t>(resume.next_step) : 0;
  wc.rejoin = chaos.rejoin;
  wc.max_reconnects = chaos.max_reconnects;
  wc.exit_after_step = chaos.exit_after_step;
  wc.exit_checkpoint_path = chaos.checkpoint_path;
  wc.stop_flag = &g_stop;
  wc.stop_checkpoint_path = chaos.stop_checkpoint_path;
  wc.fault = fault;
  wc.block_codec = setup.block_codec;
  wc.lease_ms = chaos.lease_ms;
  wc.heartbeat_ms = chaos.heartbeat_ms;
  rpc::RpcWorker worker(wc, ps_worker, plan, codec->name(),
                        std::move(sampler));
  if (!worker.Run()) {
    if (worker.simulated_exit()) {
      std::printf("worker %d: %s\n", worker_id, worker.error().c_str());
      std::fflush(stdout);
      return kSimulatedCrashExit;
    }
    if (worker.interrupted()) {
      // SIGTERM/SIGINT: the resumable checkpoint (if any) is on disk and
      // the step was abandoned cleanly — a graceful stop, not a failure.
      std::printf("worker %d: %s\n", worker_id, worker.error().c_str());
      std::fflush(stdout);
      return 0;
    }
    std::fprintf(stderr, "worker %d failed: %s\n", worker_id,
                 worker.error().c_str());
    return 1;
  }
  return 0;
}

// The server plus everything it borrows, so callers (the spawn-mode reaper
// thread needs a stable RpcServer* for RequestStop) control the lifetime.
struct ServerParts {
  std::unique_ptr<nn::Model> model;
  std::unique_ptr<ps::TensorPlan> plan;
  std::shared_ptr<const compress::Compressor> codec;
  std::unique_ptr<ps::ParameterServer> ps;
  std::unique_ptr<rpc::FaultInjector> fault;
  std::unique_ptr<rpc::RpcServer> server;
};

// --server-checkpoint wins; killing the server without one would make the
// crash unrecoverable, so --kill-server-step (and the storage-drill kill,
// --kill-server-at-checkpoint) implies a default path under --state-dir.
std::string ServerCheckpointPath(const util::Flags& flags) {
  const std::string explicit_path = flags.GetString("server-checkpoint", "");
  if (!explicit_path.empty()) return explicit_path;
  if (flags.GetInt("kill-server-step", -1) >= 0 ||
      flags.GetInt("kill-server-at-checkpoint", -1) >= 0) {
    return flags.GetString("state-dir", ".") + "/dt_server.sckpt";
  }
  return "";
}

// --fs-fault: a deterministic storage-fault injector for the server's
// checkpoint writes. Built once per process (not per incarnation) so the
// per-op call counters, occurrence latches, and the seeded short-write
// stream span server restarts — a persistent "disk" whose behavior does
// not reset because the process recovered.
std::unique_ptr<util::FaultFs> MakeServerFs(const util::Flags& flags) {
  const std::string spec = flags.GetString("fs-fault", "");
  if (spec.empty()) return nullptr;
  // Distinct stream from the frame injectors under a shared --inject-seed.
  auto fs = std::make_unique<util::FaultFs>(
      nullptr,
      static_cast<std::uint64_t>(flags.GetInt("inject-seed", 1)) ^ 0xd15cull);
  std::string spec_error;
  THREELC_CHECK_MSG(fs->AddRulesFromSpec(spec, &spec_error),
                    "bad --fs-fault spec: " << spec_error);
  return fs;
}

// --corrupt-newest-on-resume: flip one byte in the middle of the newest
// checkpoint generation, simulating at-rest corruption discovered at
// resume time; the server must fall back to the previous good generation.
bool CorruptNewestGeneration(const std::string& ckpt_path) {
  const std::size_t slash = ckpt_path.rfind('/');
  const std::string dir =
      slash == std::string::npos ? "." : ckpt_path.substr(0, slash);
  const std::string prefix =
      (slash == std::string::npos ? ckpt_path : ckpt_path.substr(slash + 1)) +
      ".g";
  std::vector<std::string> names;
  if (!util::Fs::Real()->List(dir, &names)) return false;
  long long newest = -1;
  for (const std::string& name : names) {
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string digits = name.substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    newest = std::max(newest, std::atoll(digits.c_str()));
  }
  if (newest < 0) return false;
  const std::string path = ckpt_path + ".g" + std::to_string(newest);
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size <= 0) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, size / 2, SEEK_SET);
  const int byte = std::fgetc(f);
  if (byte == EOF) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);
  std::printf("corrupting newest generation %s (byte %ld)\n", path.c_str(),
              size / 2);
  std::fflush(stdout);
  return true;
}

ServerParts MakeServerParts(const Setup& setup, const util::Flags& flags,
                            obs::Telemetry* telemetry,
                            util::Fs* fs = nullptr) {
  const train::TrainerConfig& tc = setup.config.trainer;
  ServerParts parts;
  parts.model = std::make_unique<nn::Model>(
      train::BuildMlp(setup.config.model, setup.config.model_seed));
  parts.plan = std::make_unique<ps::TensorPlan>(
      ps::TensorPlan::FromParams(parts.model->Params(),
                                 tc.min_compress_elems));
  parts.codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(tc.codec));
  parts.ps = std::make_unique<ps::ParameterServer>(
      *parts.model, *parts.plan, parts.codec, tc.optimizer);

  rpc::RpcServerConfig sc;
  sc.host = flags.GetString("host", "127.0.0.1");
  sc.port = static_cast<int>(flags.GetInt("port", 0));
  sc.num_workers = tc.num_workers;
  sc.total_steps = tc.total_steps;
  sc.lr_max = tc.lr_max;
  sc.lr_min = tc.lr_min;
  sc.grace_ms = static_cast<int>(flags.GetInt("grace-ms", 0));
  sc.replay_steps = static_cast<int>(flags.GetInt("replay-steps", 8));
  sc.lease_ms = static_cast<int>(flags.GetInt("lease-ms", 0));
  sc.heartbeat_ms = static_cast<int>(flags.GetInt("heartbeat-ms", 0));
  sc.checkpoint_path = ServerCheckpointPath(flags);
  sc.checkpoint_every =
      static_cast<int>(flags.GetInt("server-checkpoint-every", 1));
  sc.checkpoint_retain =
      static_cast<int>(flags.GetInt("server-checkpoint-retain", 2));
  sc.fs = fs;
  sc.exit_after_step = flags.GetInt("kill-server-step", -1);
  sc.exit_at_checkpoint = flags.GetInt("kill-server-at-checkpoint", -1);
  sc.stop_flag = &g_stop;
  sc.telemetry = telemetry;
  sc.block_codec = setup.block_codec;
  const std::string inject = flags.GetString("inject-server", "");
  if (!inject.empty()) {
    // Distinct stream from the workers' injectors so schedules don't
    // accidentally mirror each other under a shared --inject-seed.
    parts.fault = std::make_unique<rpc::FaultInjector>(
        static_cast<std::uint64_t>(flags.GetInt("inject-seed", 1)) ^
        0x5e4full);
    std::string spec_error;
    THREELC_CHECK_MSG(parts.fault->AddRulesFromSpec(inject, &spec_error),
                      "bad --inject-server spec: " << spec_error);
    sc.fault = parts.fault.get();
  }
  parts.server =
      std::make_unique<rpc::RpcServer>(sc, *parts.ps, parts.codec->name());
  return parts;
}

void MaybeLinger(const util::Flags& flags) {
  const std::int64_t linger_ms = flags.GetInt("linger-ms", 0);
  if (linger_ms <= 0) return;
  std::printf("lingering %lld ms for metric scrapes...\n",
              static_cast<long long>(linger_ms));
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
}

int RunSpawn(const util::Flags& flags) {
  const int num_workers =
      static_cast<int>(flags.GetInt("spawn", flags.GetInt("workers", 3)));
  Setup setup = MakeSetup(flags, num_workers);
  const std::string host = flags.GetString("host", "127.0.0.1");

  const std::int64_t kill_step = flags.GetInt("kill-step", -1);
  const int kill_worker = static_cast<int>(flags.GetInt("kill-worker", 0));
  const bool restart_killed = flags.GetBool("restart-killed", true);
  const std::string state_dir = flags.GetString("state-dir", ".");
  const std::string inject = flags.GetString("inject", "");
  const int inject_worker = static_cast<int>(flags.GetInt("inject-worker", -1));
  const auto inject_seed =
      static_cast<std::uint64_t>(flags.GetInt("inject-seed", 1));
  const int max_reconnects =
      static_cast<int>(flags.GetInt("max-reconnects", 5));
  const int lease_ms = static_cast<int>(flags.GetInt("lease-ms", 0));
  const int heartbeat_ms = static_cast<int>(flags.GetInt("heartbeat-ms", 0));

  // --sigstop-worker W@STEP: a real hung-process drill. The worker keeps
  // its socket open but stops making progress, which nothing below the
  // lease layer can distinguish from "just slow".
  const std::string sigstop_spec = flags.GetString("sigstop-worker", "");
  int sigstop_worker = -1;
  std::int64_t sigstop_step = -1;
  if (!sigstop_spec.empty()) {
    const std::size_t at = sigstop_spec.find('@');
    bool spec_ok = at != std::string::npos;
    if (spec_ok) {
      try {
        sigstop_worker = std::stoi(sigstop_spec.substr(0, at));
        sigstop_step = std::stoll(sigstop_spec.substr(at + 1));
      } catch (const std::exception&) {
        spec_ok = false;
      }
    }
    if (!spec_ok || sigstop_worker < 0 || sigstop_worker >= num_workers ||
        sigstop_step < 0) {
      std::fprintf(stderr, "bad --sigstop-worker '%s' (want W@STEP)\n",
                   sigstop_spec.c_str());
      return 1;
    }
  }
  const std::int64_t sigcont_after_ms =
      flags.GetInt("sigcont-after-ms", 3000);

  // Bind before forking so children learn the ephemeral port, and fork
  // before the parent creates telemetry threads (HTTP server, watchdog).
  std::string error;
  int bound_port = 0;
  const int listen_fd = rpc::ListenOn(
      host, static_cast<int>(flags.GetInt("port", 0)), &error, &bound_port);
  if (listen_fd < 0) {
    std::fprintf(stderr, "listen failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("spawning %d workers against %s:%d\n", num_workers,
              host.c_str(), bound_port);
  std::fflush(stdout);

  auto spawn_child = [&](int w, bool rejoin) -> pid_t {
    const pid_t pid = fork();
    if (pid != 0) return pid;
    close(listen_fd);
    WorkerChaos chaos;
    chaos.max_reconnects = max_reconnects;
    if (inject_worker < 0 || inject_worker == w) chaos.inject_spec = inject;
    // Per-worker stream: the combined schedule is still a pure function of
    // --inject-seed, but workers don't mirror each other's faults.
    chaos.inject_seed = inject_seed + static_cast<std::uint64_t>(w);
    if (kill_step >= 0 && w == kill_worker) {
      chaos.checkpoint_path =
          state_dir + "/dt_worker" + std::to_string(w) + ".ckpt";
      if (!rejoin) chaos.exit_after_step = kill_step;  // crash only once
    }
    chaos.rejoin = rejoin;
    chaos.lease_ms = lease_ms;
    chaos.heartbeat_ms = heartbeat_ms;
    // A SIGTERM'd child leaves the same resumable v3 checkpoint a
    // simulated crash would.
    chaos.stop_checkpoint_path =
        state_dir + "/dt_worker" + std::to_string(w) + ".ckpt";
    _exit(RunWorker(setup, w, host, bound_port, /*telemetry=*/nullptr,
                    chaos));
  };

  struct ChildSlot {
    pid_t pid = -1;
    bool running = false;
    bool restarted = false;
  };
  std::vector<ChildSlot> slots(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    const pid_t pid = spawn_child(w, /*rejoin=*/false);
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    slots[static_cast<std::size_t>(w)] = {pid, true, false};
  }

  std::unique_ptr<obs::Telemetry> telemetry;
  try {
    obs::TelemetryOptions opts = obs::TelemetryOptionsFromFlags(flags);
    if (opts.trace_path.empty() && opts.metrics_path.empty() &&
        !opts.monitoring_enabled()) {
      // No telemetry requested.
    } else {
      telemetry = std::make_unique<obs::Telemetry>(opts);
      if (telemetry->http_server() != nullptr) {
        std::printf("live monitoring on port %d\n",
                    telemetry->http_server()->port());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry setup failed: %s\n", e.what());
    close(listen_fd);
    return 1;
  }

  // One storage-fault injector for the whole supervised run: its call
  // counters and latches persist across server incarnations.
  std::unique_ptr<util::FaultFs> server_fs = MakeServerFs(flags);
  ServerParts parts = MakeServerParts(setup, flags, telemetry.get(),
                                      server_fs.get());
  parts.server->AdoptListener(listen_fd, bound_port);

  // Reap children continuously while the server runs: a worker that dies
  // unexpectedly stops the run immediately (instead of leaving the server
  // to hit a timeout and the child a zombie), and the designated
  // --kill-step worker is restarted from its crash checkpoint to REJOIN.
  // slots_mu also guards `parts`: the supervisor swaps in a resumed server
  // incarnation under the same lock the reaper takes to RequestStop.
  std::mutex slots_mu;
  std::atomic<bool> reaper_stop{false};
  std::atomic<int> child_failures{0};
  std::thread reaper([&] {
    bool forwarded_stop = false;
    while (!reaper_stop.load(std::memory_order_acquire)) {
      {
        std::lock_guard<std::mutex> lock(slots_mu);
        if (g_stop.load(std::memory_order_acquire) && !forwarded_stop) {
          // Propagate the operator's SIGTERM/SIGINT so every child writes
          // its resumable checkpoint and exits 0 on its own.
          forwarded_stop = true;
          for (int w = 0; w < num_workers; ++w) {
            const ChildSlot& slot = slots[static_cast<std::size_t>(w)];
            if (slot.running) kill(slot.pid, SIGTERM);
          }
        }
        for (int w = 0; w < num_workers; ++w) {
          ChildSlot& slot = slots[static_cast<std::size_t>(w)];
          if (!slot.running) continue;
          int status = 0;
          const pid_t r = waitpid(slot.pid, &status, WNOHANG);
          if (r <= 0) continue;
          slot.running = false;
          if (WIFEXITED(status) && WEXITSTATUS(status) == 0) continue;
          if (g_stop.load(std::memory_order_acquire)) {
            // Shutdown races (a child seeing the server's interruption
            // notice before its own signal) are not failures.
            continue;
          }
          if (w == sigstop_worker) {
            // The drilled worker can exit nonzero after its lease expired
            // and the server evicted it — the drill working as intended.
            std::printf("drilled worker %d exited (status %d)\n", w, status);
            std::fflush(stdout);
            continue;
          }
          const bool simulated = WIFEXITED(status) &&
                                 WEXITSTATUS(status) == kSimulatedCrashExit;
          if (simulated && kill_step >= 0 && w == kill_worker &&
              !slot.restarted) {
            if (restart_killed) {
              std::printf("restarting killed worker %d from checkpoint\n",
                          w);
              std::fflush(stdout);
              const pid_t pid = spawn_child(w, /*rejoin=*/true);
              if (pid < 0) {
                std::perror("fork (restart)");
                child_failures.fetch_add(1);
                parts.server->RequestStop("restarting worker failed");
              } else {
                slot.pid = pid;
                slot.running = true;
                slot.restarted = true;
              }
            }
            continue;  // the crash itself was requested, not a failure
          }
          std::fprintf(stderr, "worker %d exited abnormally (status %d)\n",
                       w, status);
          child_failures.fetch_add(1);
          parts.server->RequestStop("worker " + std::to_string(w) +
                                    " exited abnormally");
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  // The SIGSTOP drill: wait for the trigger step, freeze the victim, thaw
  // it later. SIGCONT is always sent — even on early shutdown — so the
  // final reap never waits on a stopped process.
  std::atomic<bool> drill_stop{false};
  std::thread drill;
  if (sigstop_worker >= 0) {
    drill = std::thread([&] {
      while (!drill_stop.load(std::memory_order_acquire)) {
        {
          std::lock_guard<std::mutex> lock(slots_mu);
          if (parts.server->steps_completed() >= sigstop_step) break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (drill_stop.load(std::memory_order_acquire)) return;
      pid_t victim = -1;
      {
        std::lock_guard<std::mutex> lock(slots_mu);
        const ChildSlot& slot =
            slots[static_cast<std::size_t>(sigstop_worker)];
        if (slot.running) victim = slot.pid;
      }
      if (victim < 0) return;
      std::printf("drill: SIGSTOP worker %d (pid %d) at step %lld\n",
                  sigstop_worker, static_cast<int>(victim),
                  static_cast<long long>(sigstop_step));
      std::fflush(stdout);
      kill(victim, SIGSTOP);
      const auto resume_at = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(sigcont_after_ms);
      while (!drill_stop.load(std::memory_order_acquire) &&
             std::chrono::steady_clock::now() < resume_at) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      kill(victim, SIGCONT);
      std::printf("drill: SIGCONT worker %d\n", sigstop_worker);
      std::fflush(stdout);
    });
  }

  // Run the server, resuming a fresh incarnation from its write-ahead
  // checkpoint whenever a (simulated) crash takes it down; the workers ride
  // out the gap on their reconnect budget and REJOIN against the bumped
  // epoch. Bounded so a checkpoint that crashes every incarnation cannot
  // loop forever.
  const bool restart_server = flags.GetBool("restart-server", true);
  const std::string server_ckpt = ServerCheckpointPath(flags);
  bool server_ok = false;
  bool server_interrupted = false;
  bool corrupted_newest = false;
  for (int incarnation = 1;; ++incarnation) {
    server_ok = parts.server->Run();
    server_interrupted = parts.server->interrupted();
    if (server_ok || !parts.server->simulated_exit()) break;
    if (!restart_server || server_ckpt.empty() || incarnation >= 4) {
      std::fprintf(stderr, "server down after %lld steps: %s\n",
                   static_cast<long long>(parts.server->steps_completed()),
                   parts.server->error().c_str());
      break;
    }
    std::printf("server crashed (%s); resuming from %s\n",
                parts.server->error().c_str(), server_ckpt.c_str());
    std::fflush(stdout);
    if (flags.GetBool("corrupt-newest-on-resume", false) &&
        !corrupted_newest) {
      corrupted_newest = true;
      if (!CorruptNewestGeneration(server_ckpt)) {
        std::fprintf(stderr,
                     "corrupt-newest-on-resume: no generation file found\n");
      }
    }
    ServerParts next = MakeServerParts(setup, flags, telemetry.get(),
                                       server_fs.get());
    std::string resume_error;
    if (!next.server->ResumeFromCheckpoint(server_ckpt, &resume_error)) {
      std::fprintf(stderr, "cannot resume server: %s\n",
                   resume_error.c_str());
      break;
    }
    // SO_REUSEADDR on the listener lets the new incarnation rebind the
    // exact port the workers are still retrying.
    const int fd = rpc::ListenOn(host, bound_port, &error, nullptr);
    if (fd < 0) {
      std::fprintf(stderr, "cannot rebind %s:%d: %s\n", host.c_str(),
                   bound_port, error.c_str());
      break;
    }
    next.server->AdoptListener(fd, bound_port);
    {
      std::lock_guard<std::mutex> lock(slots_mu);
      parts = std::move(next);
    }
  }
  if (!server_ok) {
    if (server_interrupted) {
      std::printf("server: %s\n", parts.server->error().c_str());
    } else {
      std::fprintf(stderr, "server failed after %lld steps: %s\n",
                   static_cast<long long>(parts.server->steps_completed()),
                   parts.server->error().c_str());
    }
  } else {
    std::printf("server: %lld steps (epoch %llu), model hash %08x\n",
                static_cast<long long>(parts.server->steps_completed()),
                static_cast<unsigned long long>(parts.server->epoch()),
                ModelHash(*parts.model));
  }
  drill_stop.store(true, std::memory_order_release);
  if (drill.joinable()) drill.join();
  reaper_stop.store(true, std::memory_order_release);
  reaper.join();

  // Final reap with a deadline: a clean server leaves children exiting on
  // their own; after a failure, stragglers are killed rather than letting
  // the parent hang and the children zombify.
  int failures = child_failures.load();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (int w = 0; w < num_workers; ++w) {
    ChildSlot& slot = slots[static_cast<std::size_t>(w)];
    while (slot.running) {
      int status = 0;
      const pid_t r = waitpid(slot.pid, &status, WNOHANG);
      if (r > 0) {
        slot.running = false;
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          const bool simulated = WIFEXITED(status) &&
                                 WEXITSTATUS(status) == kSimulatedCrashExit;
          const bool expected_crash = simulated && kill_step >= 0 &&
                                      w == kill_worker && !restart_killed;
          if (!expected_crash && w != sigstop_worker &&
              !g_stop.load(std::memory_order_acquire)) {
            std::fprintf(stderr,
                         "worker %d exited abnormally (status %d)\n", w,
                         status);
            ++failures;
          }
        }
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr, "worker %d did not exit; killing pid %d\n", w,
                     static_cast<int>(slot.pid));
        kill(slot.pid, SIGKILL);
        waitpid(slot.pid, &status, 0);
        slot.running = false;
        ++failures;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  if (server_interrupted && failures == 0) {
    // Graceful SIGTERM/SIGINT shutdown: checkpoint on disk, children
    // stopped cleanly — a successful interruption, not a failure.
    if (telemetry != nullptr) telemetry->Flush();
    MaybeLinger(flags);
    return 0;
  }
  if (!server_ok || failures != 0) {
    if (telemetry != nullptr) telemetry->Flush();
    MaybeLinger(flags);
    return 1;
  }

  const std::string checkpoint_path = flags.GetString("checkpoint-out", "");
  if (!checkpoint_path.empty()) {
    nn::SaveCheckpoint(*parts.model, checkpoint_path, /*checksum=*/true,
                       setup.block_codec);
    std::printf("checkpoint written to %s\n", checkpoint_path.c_str());
  }

  int rc = 0;
  if (flags.GetBool("compare", false)) {
    std::printf("re-running in-process for bitwise comparison...\n");
    std::fflush(stdout);
    train::TrainerConfig tc = setup.config.trainer;
    const train::MlpSpec spec = setup.config.model;
    const std::uint64_t model_seed = setup.config.model_seed;
    train::DistributedTrainer trainer(
        tc, [spec, model_seed] { return train::BuildMlp(spec, model_seed); },
        setup.data.train, setup.data.test);
    trainer.Run();
    const bool identical =
        ModelsBitwiseEqual(*parts.model, trainer.global_model());
    std::printf("in-process model hash %08x — %s\n",
                ModelHash(trainer.global_model()),
                identical ? "BITWISE IDENTICAL" : "MISMATCH");
    if (!identical) rc = 1;
  }

  if (telemetry != nullptr) telemetry->Flush();
  MaybeLinger(flags);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  obs::ApplyLogLevelFlag(flags);
  InstallStopHandlers();  // before fork: children inherit the disposition
  const std::string role = flags.GetString("role", "");

  try {
    if (role.empty()) return RunSpawn(flags);

    if (role == "worker") {
      const int worker_id = static_cast<int>(flags.GetInt("worker-id", 0));
      const int num_workers = static_cast<int>(flags.GetInt("workers", 3));
      const int port = static_cast<int>(flags.GetInt("port", 0));
      if (port <= 0) {
        std::fprintf(stderr, "--role worker needs --port\n");
        return 1;
      }
      Setup setup = MakeSetup(flags, num_workers);
      std::unique_ptr<obs::Telemetry> telemetry;
      obs::TelemetryOptions opts = obs::TelemetryOptionsFromFlags(flags);
      if (!opts.trace_path.empty() || !opts.metrics_path.empty() ||
          opts.monitoring_enabled()) {
        telemetry = std::make_unique<obs::Telemetry>(opts);
      }
      WorkerChaos chaos;
      chaos.max_reconnects =
          static_cast<int>(flags.GetInt("max-reconnects", 5));
      const int inject_worker =
          static_cast<int>(flags.GetInt("inject-worker", -1));
      if (inject_worker < 0 || inject_worker == worker_id) {
        chaos.inject_spec = flags.GetString("inject", "");
      }
      chaos.inject_seed = static_cast<std::uint64_t>(
                              flags.GetInt("inject-seed", 1)) +
                          static_cast<std::uint64_t>(worker_id);
      chaos.rejoin = flags.GetBool("rejoin", false);
      const std::int64_t kill_step = flags.GetInt("kill-step", -1);
      if (kill_step >= 0 || chaos.rejoin) {
        chaos.checkpoint_path = flags.GetString("state-dir", ".") +
                                "/dt_worker" + std::to_string(worker_id) +
                                ".ckpt";
        if (!chaos.rejoin) chaos.exit_after_step = kill_step;
      }
      chaos.stop_checkpoint_path = flags.GetString("state-dir", ".") +
                                   "/dt_worker" + std::to_string(worker_id) +
                                   ".ckpt";
      chaos.lease_ms = static_cast<int>(flags.GetInt("lease-ms", 0));
      chaos.heartbeat_ms =
          static_cast<int>(flags.GetInt("heartbeat-ms", 0));
      const int rc = RunWorker(setup, worker_id,
                               flags.GetString("host", "127.0.0.1"), port,
                               telemetry.get(), chaos);
      if (telemetry != nullptr) telemetry->Flush();
      return rc;
    }

    if (role == "server") {
      const int num_workers = static_cast<int>(flags.GetInt("workers", 3));
      Setup setup = MakeSetup(flags, num_workers);
      std::unique_ptr<obs::Telemetry> telemetry;
      obs::TelemetryOptions opts = obs::TelemetryOptionsFromFlags(flags);
      if (!opts.trace_path.empty() || !opts.metrics_path.empty() ||
          opts.monitoring_enabled()) {
        telemetry = std::make_unique<obs::Telemetry>(opts);
      }
      std::unique_ptr<util::FaultFs> server_fs = MakeServerFs(flags);
      ServerParts parts = MakeServerParts(setup, flags, telemetry.get(),
                                          server_fs.get());
      std::string error;
      int rc = 0;
      bool completed = false;
      if (flags.GetBool("resume", false) &&
          !parts.server->ResumeFromCheckpoint(ServerCheckpointPath(flags),
                                              &error)) {
        std::fprintf(stderr, "cannot resume server: %s\n", error.c_str());
        rc = 1;
      } else if (!parts.server->Listen(&error)) {
        std::fprintf(stderr, "listen failed: %s\n", error.c_str());
        rc = 1;
      } else {
        std::printf("server listening on %s:%d (%d workers, %lld steps, "
                    "codec %s, epoch %llu)\n",
                    flags.GetString("host", "127.0.0.1").c_str(),
                    parts.server->port(), num_workers,
                    static_cast<long long>(
                        setup.config.trainer.total_steps),
                    parts.codec->name().c_str(),
                    static_cast<unsigned long long>(parts.server->epoch()));
        std::fflush(stdout);
        if (!parts.server->Run()) {
          if (parts.server->interrupted()) {
            // SIGTERM/SIGINT: checkpoint written, clean exit. Restart with
            // --resume to continue the run.
            std::printf("server: %s\n", parts.server->error().c_str());
          } else {
            std::fprintf(stderr, "server failed after %lld steps: %s\n",
                         static_cast<long long>(
                             parts.server->steps_completed()),
                         parts.server->error().c_str());
            rc = 1;
          }
        } else {
          completed = true;
          std::printf("server: %lld steps (epoch %llu), model hash %08x\n",
                      static_cast<long long>(
                          parts.server->steps_completed()),
                      static_cast<unsigned long long>(
                          parts.server->epoch()),
                      ModelHash(*parts.model));
        }
      }
      const std::string checkpoint_path =
          flags.GetString("checkpoint-out", "");
      if (completed && !checkpoint_path.empty()) {
        nn::SaveCheckpoint(*parts.model, checkpoint_path,
                           /*checksum=*/true, setup.block_codec);
        std::printf("checkpoint written to %s\n", checkpoint_path.c_str());
      }
      if (telemetry != nullptr) telemetry->Flush();
      MaybeLinger(flags);
      return rc;
    }

    std::fprintf(stderr, "unknown --role '%s' (want server|worker)\n",
                 role.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
}
