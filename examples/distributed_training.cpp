// Real multi-process distributed training over TCP (rpc::RpcServer /
// rpc::RpcWorker), producing bitwise-identical results to the in-process
// DistributedTrainer for the same seed, codec, and step count.
//
// Modes:
//   --spawn N            fork N worker processes, run the server in this
//                        process over loopback (the default, N=3)
//   --role server        run only the parameter server (then start workers
//                        elsewhere with --role worker --port <port>)
//   --role worker        run one worker; needs --worker-id and --port
//
// Common knobs: --steps, --workers, --batch-size, --codec none|3lc, --s,
// --seed, --host, --port. Outputs: --checkpoint-out writes the final global
// model (CRC32C-protected checkpoint); --compare re-runs the same training
// in-process and verifies the parameters match bit for bit; --linger-ms
// keeps the process (and the --metrics-port HTTP endpoints) alive after
// training so a scraper can read final counters.
//
// Examples:
//   ./build/examples/distributed_training --spawn 3 --steps 20 --codec 3lc
//       --compare --metrics-port 9109 --linger-ms 2000
//   ./build/examples/distributed_training --role server --port 7171 &
//   ./build/examples/distributed_training --role worker --worker-id 0
//       --port 7171
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compress/factory.h"
#include "nn/checkpoint.h"
#include "obs/http_server.h"
#include "obs/telemetry.h"
#include "rpc/runtime.h"
#include "rpc/transport.h"
#include "train/experiment.h"
#include "train/model_zoo.h"
#include "train/trainer.h"
#include "util/crc32.h"
#include "util/flags.h"
#include "util/logging.h"

using namespace threelc;

namespace {

// Everything both roles must agree on, derived from the same flags in
// every process.
struct Setup {
  train::ExperimentConfig config;
  data::SyntheticData data;
};

Setup MakeSetup(const util::Flags& flags, int num_workers) {
  Setup setup;
  setup.config = train::SmallExperiment();
  train::TrainerConfig& tc = setup.config.trainer;
  tc.num_workers = num_workers;
  tc.total_steps = flags.GetInt("steps", 20);
  tc.batch_size = flags.GetInt("batch-size", tc.batch_size);
  tc.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));
  tc.eval_every = 0;
  const std::string codec = flags.GetString("codec", "3lc");
  if (codec == "none") {
    tc.codec = compress::CodecConfig::Float32();
  } else if (codec == "3lc") {
    tc.codec = compress::CodecConfig::ThreeLC(
        static_cast<float>(flags.GetDouble("s", 1.0)));
  } else {
    THREELC_CHECK_MSG(false, "unknown --codec '" << codec
                                                 << "' (want none|3lc)");
  }
  setup.data = data::MakeTeacherDataset(setup.config.data);
  return setup;
}

std::uint32_t ModelHash(nn::Model& model) {
  std::uint32_t crc = util::Crc32c(nullptr, 0);
  for (const nn::ParamRef& param : model.Params()) {
    crc = util::Crc32cExtend(crc, param.value->data(),
                             param.value->byte_size());
  }
  for (const tensor::Tensor* buffer : model.Buffers()) {
    crc = util::Crc32cExtend(crc, buffer->data(), buffer->byte_size());
  }
  return crc;
}

bool ModelsBitwiseEqual(nn::Model& a, nn::Model& b) {
  auto pa = a.Params(), pb = b.Params();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].value->byte_size() != pb[i].value->byte_size() ||
        std::memcmp(pa[i].value->data(), pb[i].value->data(),
                    pa[i].value->byte_size()) != 0) {
      return false;
    }
  }
  auto ba = a.Buffers(), bb = b.Buffers();
  if (ba.size() != bb.size()) return false;
  for (std::size_t i = 0; i < ba.size(); ++i) {
    if (ba[i]->byte_size() != bb[i]->byte_size() ||
        std::memcmp(ba[i]->data(), bb[i]->data(), ba[i]->byte_size()) != 0) {
      return false;
    }
  }
  return true;
}

int RunWorker(const Setup& setup, int worker_id, const std::string& host,
              int port, obs::Telemetry* telemetry) {
  const train::TrainerConfig& tc = setup.config.trainer;
  nn::Model model =
      train::BuildMlp(setup.config.model, setup.config.model_seed);
  const ps::TensorPlan plan =
      ps::TensorPlan::FromParams(model.Params(), tc.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(tc.codec));
  ps::Worker ps_worker(worker_id, model, plan, codec);

  // Reproduce DistributedTrainer's sampler seeding exactly: worker w uses
  // the (w+1)-th Fork of one seeder — this is what makes the TCP run
  // bitwise identical to the in-process run.
  util::Rng seeder(tc.seed);
  util::Rng rng = seeder.Fork();
  for (int i = 0; i < worker_id; ++i) rng = seeder.Fork();
  data::Sampler sampler(setup.data.train, rng, tc.augment_noise);

  rpc::RpcWorkerConfig wc;
  wc.host = host;
  wc.port = port;
  wc.worker_id = worker_id;
  wc.batch_size = tc.batch_size;
  wc.telemetry = telemetry;
  rpc::RpcWorker worker(wc, ps_worker, plan, codec->name(),
                        std::move(sampler));
  if (!worker.Run()) {
    std::fprintf(stderr, "worker %d failed: %s\n", worker_id,
                 worker.error().c_str());
    return 1;
  }
  return 0;
}

// Returns 0 on a clean run. On success *out_model (when non-null) receives
// the final global model.
int RunServer(const Setup& setup, const util::Flags& flags,
              obs::Telemetry* telemetry, int adopted_fd, int adopted_port,
              std::unique_ptr<nn::Model>* out_model) {
  const train::TrainerConfig& tc = setup.config.trainer;
  auto model = std::make_unique<nn::Model>(
      train::BuildMlp(setup.config.model, setup.config.model_seed));
  const ps::TensorPlan plan =
      ps::TensorPlan::FromParams(model->Params(), tc.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(tc.codec));
  ps::ParameterServer ps(*model, plan, codec, tc.optimizer);

  rpc::RpcServerConfig sc;
  sc.host = flags.GetString("host", "127.0.0.1");
  sc.port = static_cast<int>(flags.GetInt("port", 0));
  sc.num_workers = tc.num_workers;
  sc.total_steps = tc.total_steps;
  sc.lr_max = tc.lr_max;
  sc.lr_min = tc.lr_min;
  sc.telemetry = telemetry;
  rpc::RpcServer server(sc, ps, codec->name());
  if (adopted_fd >= 0) {
    server.AdoptListener(adopted_fd, adopted_port);
  } else {
    std::string error;
    if (!server.Listen(&error)) {
      std::fprintf(stderr, "listen failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("server listening on %s:%d (%d workers, %lld steps, codec "
                "%s)\n",
                sc.host.c_str(), server.port(), sc.num_workers,
                static_cast<long long>(sc.total_steps),
                codec->name().c_str());
    std::fflush(stdout);
  }
  if (!server.Run()) {
    std::fprintf(stderr, "server failed after %lld steps: %s\n",
                 static_cast<long long>(server.steps_completed()),
                 server.error().c_str());
    return 1;
  }
  std::printf("server: %lld steps, model hash %08x\n",
              static_cast<long long>(server.steps_completed()),
              ModelHash(*model));
  if (out_model != nullptr) *out_model = std::move(model);
  return 0;
}

void MaybeLinger(const util::Flags& flags) {
  const std::int64_t linger_ms = flags.GetInt("linger-ms", 0);
  if (linger_ms <= 0) return;
  std::printf("lingering %lld ms for metric scrapes...\n",
              static_cast<long long>(linger_ms));
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
}

int RunSpawn(const util::Flags& flags) {
  const int num_workers =
      static_cast<int>(flags.GetInt("spawn", flags.GetInt("workers", 3)));
  Setup setup = MakeSetup(flags, num_workers);
  const std::string host = flags.GetString("host", "127.0.0.1");

  // Bind before forking so children learn the ephemeral port, and fork
  // before the parent creates telemetry threads (HTTP server, watchdog).
  std::string error;
  int bound_port = 0;
  const int listen_fd = rpc::ListenOn(
      host, static_cast<int>(flags.GetInt("port", 0)), &error, &bound_port);
  if (listen_fd < 0) {
    std::fprintf(stderr, "listen failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("spawning %d workers against %s:%d\n", num_workers,
              host.c_str(), bound_port);
  std::fflush(stdout);

  std::vector<pid_t> children;
  for (int w = 0; w < num_workers; ++w) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      close(listen_fd);
      _exit(RunWorker(setup, w, host, bound_port, /*telemetry=*/nullptr));
    }
    children.push_back(pid);
  }

  std::unique_ptr<obs::Telemetry> telemetry;
  try {
    obs::TelemetryOptions opts = obs::TelemetryOptionsFromFlags(flags);
    if (opts.trace_path.empty() && opts.metrics_path.empty() &&
        !opts.monitoring_enabled()) {
      // No telemetry requested.
    } else {
      telemetry = std::make_unique<obs::Telemetry>(opts);
      if (telemetry->http_server() != nullptr) {
        std::printf("live monitoring on port %d\n",
                    telemetry->http_server()->port());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry setup failed: %s\n", e.what());
    close(listen_fd);
    return 1;
  }

  std::unique_ptr<nn::Model> model;
  int failures = RunServer(setup, flags, telemetry.get(), listen_fd,
                           bound_port, &model);
  for (std::size_t w = 0; w < children.size(); ++w) {
    int status = 0;
    if (waitpid(children[w], &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "worker %zu exited abnormally (status %d)\n", w,
                   status);
      ++failures;
    }
  }
  if (failures != 0) {
    if (telemetry != nullptr) telemetry->Flush();
    MaybeLinger(flags);
    return 1;
  }

  const std::string checkpoint_path = flags.GetString("checkpoint-out", "");
  if (!checkpoint_path.empty()) {
    nn::SaveCheckpoint(*model, checkpoint_path);
    std::printf("checkpoint written to %s\n", checkpoint_path.c_str());
  }

  int rc = 0;
  if (flags.GetBool("compare", false)) {
    std::printf("re-running in-process for bitwise comparison...\n");
    std::fflush(stdout);
    train::TrainerConfig tc = setup.config.trainer;
    const train::MlpSpec spec = setup.config.model;
    const std::uint64_t model_seed = setup.config.model_seed;
    train::DistributedTrainer trainer(
        tc, [spec, model_seed] { return train::BuildMlp(spec, model_seed); },
        setup.data.train, setup.data.test);
    trainer.Run();
    const bool identical = ModelsBitwiseEqual(*model, trainer.global_model());
    std::printf("in-process model hash %08x — %s\n",
                ModelHash(trainer.global_model()),
                identical ? "BITWISE IDENTICAL" : "MISMATCH");
    if (!identical) rc = 1;
  }

  if (telemetry != nullptr) telemetry->Flush();
  MaybeLinger(flags);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  obs::ApplyLogLevelFlag(flags);
  const std::string role = flags.GetString("role", "");

  try {
    if (role.empty()) return RunSpawn(flags);

    if (role == "worker") {
      const int worker_id = static_cast<int>(flags.GetInt("worker-id", 0));
      const int num_workers = static_cast<int>(flags.GetInt("workers", 3));
      const int port = static_cast<int>(flags.GetInt("port", 0));
      if (port <= 0) {
        std::fprintf(stderr, "--role worker needs --port\n");
        return 1;
      }
      Setup setup = MakeSetup(flags, num_workers);
      std::unique_ptr<obs::Telemetry> telemetry;
      obs::TelemetryOptions opts = obs::TelemetryOptionsFromFlags(flags);
      if (!opts.trace_path.empty() || !opts.metrics_path.empty() ||
          opts.monitoring_enabled()) {
        telemetry = std::make_unique<obs::Telemetry>(opts);
      }
      const int rc = RunWorker(setup, worker_id,
                               flags.GetString("host", "127.0.0.1"), port,
                               telemetry.get());
      if (telemetry != nullptr) telemetry->Flush();
      return rc;
    }

    if (role == "server") {
      const int num_workers = static_cast<int>(flags.GetInt("workers", 3));
      Setup setup = MakeSetup(flags, num_workers);
      std::unique_ptr<obs::Telemetry> telemetry;
      obs::TelemetryOptions opts = obs::TelemetryOptionsFromFlags(flags);
      if (!opts.trace_path.empty() || !opts.metrics_path.empty() ||
          opts.monitoring_enabled()) {
        telemetry = std::make_unique<obs::Telemetry>(opts);
      }
      std::unique_ptr<nn::Model> model;
      int rc = RunServer(setup, flags, telemetry.get(), /*adopted_fd=*/-1,
                         /*adopted_port=*/0, &model);
      const std::string checkpoint_path =
          flags.GetString("checkpoint-out", "");
      if (rc == 0 && !checkpoint_path.empty()) {
        nn::SaveCheckpoint(*model, checkpoint_path);
        std::printf("checkpoint written to %s\n", checkpoint_path.c_str());
      }
      if (telemetry != nullptr) telemetry->Flush();
      MaybeLinger(flags);
      return rc;
    }

    std::fprintf(stderr, "unknown --role '%s' (want server|worker)\n",
                 role.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
}
