// Codec explorer: compare every compression design on tensors with
// different value distributions — the tool you'd reach for when deciding
// which scheme (and which sparsity multiplier) fits your workload.
//
// Usage:  ./build/examples/codec_explorer [num_values]
//   [--metrics-port=9109] [--hold-seconds=30] [--metrics-out=m.jsonl]
//
// Prints, per (distribution, codec): payload size, compression ratio,
// bits/value, RMSE of a single round trip, and encode throughput. With
// --metrics-port the same numbers are recorded as registry metrics and
// served on /metricsz; --hold-seconds keeps the process (and server)
// alive after the sweep so a scraper can collect them.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compress/factory.h"
#include "obs/http_server.h"
#include "obs/telemetry.h"
#include "tensor/tensor_ops.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace threelc;

namespace {

tensor::Tensor MakeDistribution(const std::string& kind, std::int64_t n,
                                util::Rng& rng) {
  tensor::Tensor t(tensor::Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    float v = 0.0f;
    if (kind == "gaussian") {
      v = rng.NormalFloat(0.0f, 0.01f);
    } else if (kind == "sparse-gradient") {
      v = rng.Bernoulli(0.03) ? rng.NormalFloat(0.0f, 0.05f) : 0.0f;
    } else if (kind == "heavy-tailed") {
      v = rng.NormalFloat(0.0f, 0.002f);
      if (rng.Bernoulli(0.005)) v *= 200.0f;
    } else if (kind == "late-training") {
      // Small decayed updates with rare significant entries.
      v = rng.Bernoulli(0.01) ? rng.NormalFloat(0.0f, 0.01f)
                              : rng.NormalFloat(0.0f, 0.0002f);
    }
    t[static_cast<std::size_t>(i)] = v;
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  obs::ApplyLogLevelFlag(flags);
  const std::int64_t n = flags.positional().empty()
                             ? 262144
                             : std::atoll(flags.positional()[0].c_str());
  util::Rng rng(2024);

  std::unique_ptr<obs::Telemetry> telemetry;
  const obs::TelemetryOptions tel_opts = obs::TelemetryOptionsFromFlags(flags);
  if (!tel_opts.metrics_path.empty() || tel_opts.monitoring_enabled()) {
    try {
      telemetry = std::make_unique<obs::Telemetry>(tel_opts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "telemetry setup failed: %s\n", e.what());
      return 1;
    }
    if (telemetry->http_server() != nullptr) {
      std::printf("live metrics on port %d: /metricsz /healthz /statusz\n",
                  telemetry->http_server()->port());
    }
  }

  const std::vector<std::string> distributions = {
      "gaussian", "sparse-gradient", "heavy-tailed", "late-training"};

  for (const auto& dist : distributions) {
    tensor::Tensor input = MakeDistribution(dist, n, rng);
    std::printf("\n=== %s (%lld values, max|v|=%.4g) ===\n", dist.c_str(),
                static_cast<long long>(n),
                static_cast<double>(tensor::MaxAbs(input)));
    std::printf("%-22s %12s %10s %12s %12s %14s\n", "codec", "bytes",
                "ratio", "bits/value", "rmse", "enc MB/s");
    for (const auto& design : compress::Table1Designs()) {
      auto codec = compress::MakeCompressor(design);
      auto ctx = codec->MakeContext(input.shape());
      util::ByteBuffer payload;
      util::WallTimer timer;
      codec->Encode(input, *ctx, payload);
      const double enc_seconds = timer.ElapsedSeconds();
      tensor::Tensor decoded(input.shape());
      util::ByteReader reader(payload);
      codec->Decode(reader, decoded);
      if (telemetry) {
        // One gauge per (distribution, codec) so /metricsz carries the
        // whole sweep; names are sanitized for Prometheus at exposition.
        const std::string key = "explorer/" + dist + "/" + codec->name();
        telemetry->metrics().gauge(key + "/bits_per_value")
            ->Set(compress::BitsPerValue(static_cast<std::size_t>(n),
                                         payload.size()));
        telemetry->metrics().gauge(key + "/rmse")
            ->Set(tensor::Rmse(input, decoded));
        telemetry->metrics().counter(key + "/payload_bytes")
            ->Add(static_cast<double>(payload.size()));
      }
      std::printf("%-22s %12zu %9.1fx %12.3f %12.3g %14.0f\n",
                  codec->name().c_str(), payload.size(),
                  compress::CompressionRatio(static_cast<std::size_t>(n),
                                             payload.size()),
                  compress::BitsPerValue(static_cast<std::size_t>(n),
                                         payload.size()),
                  tensor::Rmse(input, decoded),
                  static_cast<double>(n) * sizeof(float) / 1e6 /
                      (enc_seconds + 1e-12));
    }
  }
  std::printf("\nNote: '2 local steps' shows its send step; its skip steps "
              "are 1 byte.\nRMSE is a single-shot figure — error-feedback "
              "codecs transmit the remainder in later steps.\n");
  const std::int64_t hold = flags.GetInt("hold-seconds", 0);
  if (hold > 0 && telemetry && telemetry->http_server() != nullptr) {
    std::printf("holding for %llds so the endpoints can be scraped...\n",
                static_cast<long long>(hold));
    std::this_thread::sleep_for(std::chrono::seconds(hold));
  }
  return 0;
}
