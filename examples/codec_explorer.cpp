// Codec explorer: compare every compression design on tensors with
// different value distributions — the tool you'd reach for when deciding
// which scheme (and which sparsity multiplier) fits your workload.
//
// Usage:  ./build/examples/codec_explorer [num_values]
//
// Prints, per (distribution, codec): payload size, compression ratio,
// bits/value, RMSE of a single round trip, and encode throughput.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "compress/factory.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace threelc;

namespace {

tensor::Tensor MakeDistribution(const std::string& kind, std::int64_t n,
                                util::Rng& rng) {
  tensor::Tensor t(tensor::Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    float v = 0.0f;
    if (kind == "gaussian") {
      v = rng.NormalFloat(0.0f, 0.01f);
    } else if (kind == "sparse-gradient") {
      v = rng.Bernoulli(0.03) ? rng.NormalFloat(0.0f, 0.05f) : 0.0f;
    } else if (kind == "heavy-tailed") {
      v = rng.NormalFloat(0.0f, 0.002f);
      if (rng.Bernoulli(0.005)) v *= 200.0f;
    } else if (kind == "late-training") {
      // Small decayed updates with rare significant entries.
      v = rng.Bernoulli(0.01) ? rng.NormalFloat(0.0f, 0.01f)
                              : rng.NormalFloat(0.0f, 0.0002f);
    }
    t[static_cast<std::size_t>(i)] = v;
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 262144;
  util::Rng rng(2024);

  const std::vector<std::string> distributions = {
      "gaussian", "sparse-gradient", "heavy-tailed", "late-training"};

  for (const auto& dist : distributions) {
    tensor::Tensor input = MakeDistribution(dist, n, rng);
    std::printf("\n=== %s (%lld values, max|v|=%.4g) ===\n", dist.c_str(),
                static_cast<long long>(n),
                static_cast<double>(tensor::MaxAbs(input)));
    std::printf("%-22s %12s %10s %12s %12s %14s\n", "codec", "bytes",
                "ratio", "bits/value", "rmse", "enc MB/s");
    for (const auto& design : compress::Table1Designs()) {
      auto codec = compress::MakeCompressor(design);
      auto ctx = codec->MakeContext(input.shape());
      util::ByteBuffer payload;
      util::WallTimer timer;
      codec->Encode(input, *ctx, payload);
      const double enc_seconds = timer.ElapsedSeconds();
      tensor::Tensor decoded(input.shape());
      util::ByteReader reader(payload);
      codec->Decode(reader, decoded);
      std::printf("%-22s %12zu %9.1fx %12.3f %12.3g %14.0f\n",
                  codec->name().c_str(), payload.size(),
                  compress::CompressionRatio(static_cast<std::size_t>(n),
                                             payload.size()),
                  compress::BitsPerValue(static_cast<std::size_t>(n),
                                         payload.size()),
                  tensor::Rmse(input, decoded),
                  static_cast<double>(n) * sizeof(float) / 1e6 /
                      (enc_seconds + 1e-12));
    }
  }
  std::printf("\nNote: '2 local steps' shows its send step; its skip steps "
              "are 1 byte.\nRMSE is a single-shot figure — error-feedback "
              "codecs transmit the remainder in later steps.\n");
  return 0;
}
