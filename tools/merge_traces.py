#!/usr/bin/env python3
"""Merge per-process chrome traces from a distributed run onto one timeline.

Each process in the TCP runtime (one server, N workers) writes its own
chrome trace with timestamps relative to its own start, so loading them
individually shows unrelated clocks. This tool merges them into a single
chrome://tracing / Perfetto file with one pid per process and worker
timelines shifted onto the server's clock.

Alignment uses the step ids stamped into the spans (the "args":{"step":N}
field emitted by obs::ScopedSpan): for every step both sides see, the
server's rpc/step_barrier span ends when the last push of that step
arrived, and a worker's rpc/push span ends when its push was flushed. The
per-trace offset is the median over common steps of
(server_barrier_end - worker_push_end), which is robust to stragglers and
needs no synchronized clocks.

A worker that crashes and rejoins mid-run restarts with a fresh process
and a fresh clock, so it leaves TWO trace files for the same rank. Each
file is an incarnation with its own independent offset — aligning the
rejoined trace must never reuse (or overwrite) the first connection's
offset, since the two processes' clocks are unrelated. Pass multiple
traces for one rank with the RANK=PATH form; incarnations are numbered in
argument order and each gets its own pid and a "worker-R (rejoin K)"
track name.

Usage:
  merge_traces.py server_trace.json worker0.json [worker1.json ...] \
      -o merged.json [--report]
  merge_traces.py server.json 0=w0_run1.json 1=w1.json 0=w0_rejoin.json \
      -o merged.json
"""

import argparse
import json
import statistics
import sys


def load_events(path):
    with open(path) as f:
        data = json.load(f)
    events = data["traceEvents"] if isinstance(data, dict) else data
    if not isinstance(events, list):
        raise ValueError(f"{path}: no traceEvents array")
    return events


def span_ends_by_step(events, name):
    """step id -> end timestamp (ts + dur) for complete spans named `name`."""
    ends = {}
    for e in events:
        if e.get("ph") != "X" or e.get("name") != name:
            continue
        step = e.get("args", {}).get("step")
        if step is None:
            continue
        ends[step] = e["ts"] + e.get("dur", 0)
    return ends


def worker_offset_us(server_events, worker_events):
    """Shift to add to worker timestamps; None when no common steps."""
    server_ends = span_ends_by_step(server_events, "rpc/step_barrier")
    worker_ends = span_ends_by_step(worker_events, "rpc/push")
    common = sorted(set(server_ends) & set(worker_ends))
    if not common:
        return None, 0
    deltas = [server_ends[s] - worker_ends[s] for s in common]
    return statistics.median(deltas), len(common)


def parse_worker_arg(arg, position):
    """`RANK=PATH` -> (rank, path); bare PATH -> (position, path)."""
    rank_part, sep, path_part = arg.partition("=")
    if sep and rank_part.isdigit():
        return int(rank_part), path_part
    return position, arg


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+",
                    help="server trace first, then one trace per worker "
                         "incarnation (PATH, or RANK=PATH when a rank "
                         "rejoined and left several traces)")
    ap.add_argument("-o", "--out", required=True)
    ap.add_argument("--report", action="store_true",
                    help="print per-incarnation offsets and common-step "
                         "counts")
    args = ap.parse_args()

    try:
        server_events = load_events(args.traces[0])
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"merge_traces: {e}", file=sys.stderr)
        return 1

    merged = []

    def add_process(pid, role, events, shift_us):
        merged.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": role}})
        for e in events:
            e = dict(e)
            e["pid"] = pid
            if "ts" in e:
                e["ts"] = e["ts"] + shift_us
            merged.append(e)

    add_process(0, "server", server_events, 0.0)

    # (rank, incarnation) -> offset. A rank appears once per process that
    # ever held it; each incarnation's clock is aligned independently, so
    # a rejoin can never clobber the first connection's offset.
    incarnations = {}
    for position, arg in enumerate(args.traces[1:]):
        rank, path = parse_worker_arg(arg, position)
        incarnation = incarnations.setdefault(rank, 0)
        incarnations[rank] = incarnation + 1
        try:
            worker_events = load_events(path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
            print(f"merge_traces: {e}", file=sys.stderr)
            return 1
        offset, common = worker_offset_us(server_events, worker_events)
        if offset is None:
            print(f"merge_traces: warning: {path} shares no step-stamped "
                  f"spans with the server trace; leaving its clock unshifted",
                  file=sys.stderr)
            offset = 0.0
        role = f"worker-{rank}"
        if incarnation > 0:
            role += f" (rejoin {incarnation})"
        if args.report:
            print(f"merge_traces: {role} ({path}): offset "
                  f"{offset:+.1f} us from {common} common steps")
        add_process(1 + position, role, worker_events, offset)

    with open(args.out, "w") as f:
        json.dump({"displayTimeUnit": "ms", "traceEvents": merged}, f)
    print(f"merge_traces: wrote {args.out} ({len(merged)} events, "
          f"{len(args.traces)} processes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
