#!/usr/bin/env python3
"""Validate Prometheus text exposition (format 0.0.4) read from stdin.

Used by the CI monitoring smoke job:

    curl -s localhost:9109/metricsz | python3 tools/check_prometheus.py

Checks, with no third-party dependencies:
  - every non-comment line is `name[{labels}] value` with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a parseable value (floats plus the
    NaN/+Inf/-Inf exposition literals),
  - label values are properly quoted and escaped,
  - every sample's base name was declared by preceding # HELP and # TYPE
    lines (quantile series and _sum/_count belong to their summary),
  - # TYPE uses a known metric type,
  - no metric family is declared (# HELP / # TYPE) twice — the symptom of
    two writers emitting the same registry, or a registry merged into the
    same exposition twice,
  - no identical series (name + label set) is sampled twice,
  - with --max-workers N: no *_cluster_* family carries more than N
    distinct worker="..." label values — more workers in the exposition
    than the fleet has means stale per-worker series were never pruned
    (eviction must call ClusterView::RemoveWorker).

Exits 0 and prints a sample count on success; exits 1 with the offending
line otherwise. An empty exposition (zero samples) also fails.
"""
import argparse
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name, optional {labels}, whitespace, value
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)\s*$")
LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\[\\"n])*"$')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def fail(lineno, line, why):
    print(f"check_prometheus: line {lineno}: {why}\n  {line}",
          file=sys.stderr)
    sys.exit(1)


def parse_value(text):
    if text in ("NaN", "+Inf", "-Inf", "Inf"):
        return True
    try:
        float(text)
        return True
    except ValueError:
        return False


def base_name(name, summaries):
    """Map _sum/_count series back to their declared summary name."""
    for suffix in ("_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in summaries:
            return name[: -len(suffix)]
    return name


WORKER_LABEL_RE = re.compile(r'worker="([^"]*)"')


def main():
    ap = argparse.ArgumentParser(
        description="validate Prometheus text exposition from stdin")
    ap.add_argument("--max-workers", type=int, default=None,
                    help="fail if any *_cluster_* family has more distinct "
                         "worker label values than this")
    args = ap.parse_args()

    helped, typed, summaries = set(), set(), set()
    seen_series = set()
    cluster_workers = {}  # family -> set of worker label values
    samples = 0
    for lineno, raw in enumerate(sys.stdin, 1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                fail(lineno, line, "malformed HELP line")
            if parts[2] in helped:
                fail(lineno, line,
                     f"duplicate # HELP for family {parts[2]!r}")
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not NAME_RE.match(parts[2]):
                fail(lineno, line, "malformed TYPE line")
            if parts[3] not in TYPES:
                fail(lineno, line, f"unknown metric type {parts[3]!r}")
            if parts[2] in typed:
                fail(lineno, line,
                     f"duplicate # TYPE for family {parts[2]!r}")
            typed.add(parts[2])
            if parts[3] == "summary":
                summaries.add(parts[2])
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, line, "not a `name[{labels}] value` sample")
        name, labels, value = m.groups()
        if labels:
            for label in labels[1:-1].split(","):
                if label and not LABEL_RE.match(label):
                    fail(lineno, line, f"bad label {label!r}")
        if not parse_value(value):
            fail(lineno, line, f"unparseable value {value!r}")
        base = base_name(name, summaries)
        if base not in helped or base not in typed:
            fail(lineno, line,
                 f"sample {name!r} lacks preceding # HELP/# TYPE for "
                 f"{base!r}")
        series = (name, labels or "")
        if series in seen_series:
            fail(lineno, line, f"duplicate series {name}{labels or ''}")
        seen_series.add(series)
        if labels and "_cluster_" in base:
            m = WORKER_LABEL_RE.search(labels)
            if m:
                cluster_workers.setdefault(base, set()).add(m.group(1))
        samples += 1
    if samples == 0:
        print("check_prometheus: no samples found", file=sys.stderr)
        sys.exit(1)
    if args.max_workers is not None:
        for family, workers in sorted(cluster_workers.items()):
            if len(workers) > args.max_workers:
                print(f"check_prometheus: family {family!r} has "
                      f"{len(workers)} distinct worker labels "
                      f"(> --max-workers {args.max_workers}): "
                      f"{sorted(workers)}", file=sys.stderr)
                sys.exit(1)
    print(f"check_prometheus: OK ({samples} samples)")


if __name__ == "__main__":
    main()
