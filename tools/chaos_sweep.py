#!/usr/bin/env python3
"""Seeded chaos sweep over the multi-process training example.

Each seed deterministically derives one fault scenario — a transport-level
injection schedule (corrupt / close / delay / stall / one-way partition),
a worker kill + restart, or a SIGSTOP drill (the spawn harness freezes a
worker mid-run and SIGCONTs it later) — and runs
examples/distributed_training in --spawn mode against it with heartbeats
and leases on. A seed is green only if the run:

  - terminates within --deadline-s (a hang is the one unforgivable
    outcome this sweep exists to catch),
  - exits 0 with "clean shutdown" in the log,
  - ends bitwise identical to the fault-free run ("BITWISE IDENTICAL",
    asserted whenever the scenario keeps all workers alive to the end),
  - shows no sanitizer report.

Same seed, same schedule, same verdict — a red seed is a repro command,
not a flake. Run the in-process edition first (fault_tolerance_test's
ChaosSweepSeededSchedulesTerminateCleanly); this sweep adds real
processes, real sockets, and real signals on top.

With --disk the sweep targets the storage stack instead of the wire:
each seed derives one disk-fault drill (full disk, media-error write,
failing fsync, torn rename at the power-loss point, or a corrupt-newest
generation forcing a fallback resume) against the server's checkpoint
path in a per-seed temp directory. Green additionally requires the
mode's own evidence in the log (a surviving degraded write, a fallback,
a resume) — a drill that silently never fired is red, not lucky.

Usage:
  chaos_sweep.py --binary build/examples/distributed_training \
      [--seeds 25] [--start-seed 1] [--workers 3] [--steps 20]
      [--deadline-s 120] [--base-port 15400] [--disk] [-v]

Exit codes: 0 when every seed is green, 1 otherwise. stdlib only.
"""

import argparse
import random
import subprocess
import sys
import tempfile

# Transport-level faults a worker can take mid-run and still finish with
# bitwise parity: corruption is retried, close reconnects, delay is just
# late, stall and partition are lease-detected and rejoined.
FAULT_MENU = [
    "corrupt:push@{step}",
    "close:push@{step}",
    "delay50:pull@{step}",
    "stall:push@{step}",
    "partition:tx@{step}",
    "partition:rx@{step}",
    "partition:both@{step}",
]


def derive_scenario(seed, workers, steps):
    """Map a seed to one scenario: (mode, extra_argv, description).

    Modes: "inject" (transport fault schedule on one worker), "kill"
    (simulated crash + restart), "sigstop" (spawn-harness freeze drill).
    """
    rng = random.Random(seed)
    victim = rng.randrange(1, workers)  # worker 0 carries the slowdown
    step = rng.randrange(1, max(2, steps // 2))
    mode = rng.choice(["inject", "inject", "inject", "kill", "sigstop"])
    if mode == "inject":
        n_faults = rng.choice([1, 1, 2])
        specs = []
        for _ in range(n_faults):
            at = rng.randrange(1, max(2, steps // 2))
            specs.append(rng.choice(FAULT_MENU).format(step=at))
        spec = ";".join(specs)
        return mode, ["--inject", spec, "--inject-worker", str(victim),
                      "--inject-seed", str(seed)], f"{spec} on w{victim}"
    if mode == "kill":
        return mode, ["--kill-worker", str(victim), "--kill-step",
                      str(step), "--restart-killed"], \
            f"kill w{victim}@{step} + restart"
    # sigstop: freeze the victim mid-run; a delay injection on worker 0
    # slows the step loop so the drill lands before the run finishes.
    return mode, ["--sigstop-worker", f"{victim}@{step}",
                  "--sigcont-after-ms", "3000",
                  "--inject", "delay100:push@any#*", "--inject-worker",
                  "0"], f"SIGSTOP w{victim}@{step}, SIGCONT after 3 s"


def derive_disk_scenario(seed, steps, ckpt_dir):
    """Map a seed to one storage-fault drill.

    Returns (mode, extra_argv, expected_log_substrings, description).
    The fault specs use the util::FaultFs grammar (ACTION:OP@CALL[#OCC]);
    occurrence indices are kept small so the fault always lands within
    the run's checkpoint traffic regardless of --steps.
    """
    rng = random.Random(seed)
    mode = ["enospc", "eio", "fsyncfail", "torn",
            "fallback"][seed % 5]
    ckpt = f"{ckpt_dir}/dt_server.sckpt"
    if mode == "fallback":
        # Die at a checkpoint, corrupt the newest generation while the
        # server is down, and require the resume to fall back past it.
        at = rng.randrange(2, max(3, steps // 2))
        return mode, ["--kill-server-at-checkpoint", str(at),
                      "--corrupt-newest-on-resume", "--state-dir",
                      ckpt_dir], ["fell back", "resumed from checkpoint"], \
            f"corrupt newest generation on resume after kill@ckpt {at}"
    if mode == "torn":
        # Swallow one rename: the server dies at the power-loss point and
        # must resume from the previous intact generation.
        occ = rng.randrange(1, max(2, steps // 4))
        spec = f"torn:rename@any#{occ}"
        expect = ["injected torn checkpoint write", "resumed from checkpoint"]
    elif mode == "enospc":
        # The disk stays full: every checkpoint write fails, training
        # must keep going degraded and still finish bitwise identical.
        spec = "enospc:write@any#*"
        expect = ["checkpoint write failed"]
    elif mode == "eio":
        occ = rng.randrange(0, 8)
        spec = f"eio:write@any#{occ}"
        expect = ["checkpoint write failed"]
    else:  # fsyncfail
        occ = rng.randrange(0, 8)
        spec = f"fsyncfail:fsync@any#{occ}"
        expect = ["checkpoint write failed"]
    return mode, ["--server-checkpoint", ckpt, "--fs-fault", spec,
                  "--inject-seed", str(seed)], expect, spec


def run_seed(args, seed, ckpt_dir=None):
    if args.disk:
        mode, extra, expect, desc = derive_disk_scenario(
            seed, args.steps, ckpt_dir)
    else:
        mode, extra, desc = derive_scenario(seed, args.workers, args.steps)
        expect = []
    port = args.base_port + (seed % 1000)
    cmd = [args.binary, "--spawn", str(args.workers), "--steps",
           str(args.steps), "--codec", "3lc", "--port", str(port),
           "--seed", str(seed), "--compare", "--grace-ms", "30000",
           "--lease-ms", "800", "--heartbeat-ms", "200",
           "--max-reconnects", "5"] + extra
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=args.deadline_s)
    except subprocess.TimeoutExpired:
        return False, f"HUNG after {args.deadline_s}s [{mode}: {desc}]", cmd
    log = proc.stdout + proc.stderr
    problems = []
    if proc.returncode != 0:
        problems.append(f"exit {proc.returncode}")
    if "clean shutdown" not in log:
        problems.append("no clean shutdown")
    if "BITWISE IDENTICAL" not in log:
        problems.append("no bitwise parity")
    for marker in ("AddressSanitizer", "LeakSanitizer", "runtime error:"):
        if marker in log:
            problems.append(f"sanitizer: {marker}")
    if mode == "sigstop" and "drill: SIGSTOP" not in log:
        problems.append("drill never fired")
    for needle in expect:
        if needle not in log:
            problems.append(f"missing '{needle}'")
    if problems:
        return False, f"{', '.join(problems)} [{mode}: {desc}]", cmd
    return True, f"ok [{mode}: {desc}]", cmd


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--binary", required=True,
                    help="path to the distributed_training example")
    ap.add_argument("--seeds", type=int, default=25,
                    help="number of seeds to sweep (default 25)")
    ap.add_argument("--start-seed", type=int, default=1)
    ap.add_argument("--workers", type=int, default=3)
    ap.add_argument("--steps", type=int, default=20)
    ap.add_argument("--deadline-s", type=int, default=120,
                    help="per-seed wall deadline; overrun == hang == red")
    ap.add_argument("--base-port", type=int, default=15400,
                    help="each seed listens on base-port + seed %% 1000")
    ap.add_argument("--disk", action="store_true",
                    help="sweep storage-fault drills (checkpoint path) "
                         "instead of wire faults")
    ap.add_argument("-v", "--verbose", action="store_true",
                    help="print the repro command for every seed")
    args = ap.parse_args()

    green = 0
    failures = []
    for seed in range(args.start_seed, args.start_seed + args.seeds):
        if args.disk:
            with tempfile.TemporaryDirectory(prefix="chaos_disk_") as d:
                ok, verdict, cmd = run_seed(args, seed, ckpt_dir=d)
        else:
            ok, verdict, cmd = run_seed(args, seed)
        line = f"seed {seed:>4}: {'GREEN' if ok else 'RED'}  {verdict}"
        print(line, flush=True)
        if args.verbose or not ok:
            print(f"  repro: {' '.join(cmd)}", flush=True)
        if ok:
            green += 1
        else:
            failures.append(seed)

    total = args.seeds
    print(f"{green}/{total} seeds green")
    if failures:
        print(f"chaos_sweep: red seeds: "
              f"{', '.join(str(s) for s in failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
