#!/usr/bin/env python3
"""Compare a BENCH_*.json run against its committed baseline.

The perf regression gate: bench_codec / bench_step emit machine-readable
metric files (schema threelc-bench-v1), baselines are committed under
bench/baselines/, and CI fails the build when any metric regresses by more
than --threshold (default 10%). Direction comes from each metric's
higher_is_better flag, so throughput (GB/s) and latency (ms) gate
correctly with one rule.

Usage:
  check_perf.py --baseline bench/baselines/BENCH_codec.json \
                --current BENCH_codec.json [--threshold 0.10]
  check_perf.py --baseline ... --current ... --update-baseline

Exit codes: 0 ok, 1 regression (or missing metric / malformed file).
"""

import argparse
import json
import shutil
import sys


def load_bench(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "threelc-bench-v1":
        raise ValueError(f"{path}: unexpected schema {data.get('schema')!r}")
    metrics = data.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(f"{path}: no metrics")
    return data


def regression(baseline, current, higher_is_better):
    """Fractional regression (positive = worse), direction-aware."""
    if baseline <= 0:
        return 0.0
    if higher_is_better:
        return (baseline - current) / baseline
    return (current - baseline) / baseline


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max tolerated fractional regression (default 0.10)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="copy --current over --baseline and exit 0")
    args = ap.parse_args()

    if args.update_baseline:
        shutil.copyfile(args.current, args.baseline)
        print(f"check_perf: baseline {args.baseline} updated from "
              f"{args.current}")
        return 0

    try:
        base = load_bench(args.baseline)
        cur = load_bench(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_perf: FAIL {e}", file=sys.stderr)
        return 1

    failures = []
    rows = []
    for key, bm in sorted(base["metrics"].items()):
        cm = cur["metrics"].get(key)
        if cm is None:
            failures.append(f"{key}: missing from current run")
            continue
        hib = bool(bm.get("higher_is_better", True))
        reg = regression(float(bm["value"]), float(cm["value"]), hib)
        status = "FAIL" if reg > args.threshold else "ok"
        rows.append((key, bm["value"], cm["value"], reg, status,
                     bm.get("unit", "")))
        if reg > args.threshold:
            failures.append(
                f"{key}: {bm['value']:.4g} -> {cm['value']:.4g} "
                f"({reg * 100:+.1f}% vs {args.threshold * 100:.0f}% budget)")

    new_keys = set(cur["metrics"]) - set(base["metrics"])
    for key in sorted(new_keys):
        print(f"check_perf: note: {key} not in baseline (run "
              f"--update-baseline to add it)")

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'metric':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'delta':>8}  status")
    for key, b, c, reg, status, unit in rows:
        print(f"{key:<{width}}  {b:>12.4g}  {c:>12.4g}  "
              f"{reg * 100:>+7.1f}%  {status} {unit}")

    if failures:
        print(f"\ncheck_perf: FAIL {len(failures)} regression(s) beyond "
              f"{args.threshold * 100:.0f}%:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print(f"\ncheck_perf: ok ({len(rows)} metrics within "
          f"{args.threshold * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
