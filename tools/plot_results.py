#!/usr/bin/env python3
"""Plot the paper's figures from bench CSVs, or a telemetry metrics JSONL.

Usage:
    python3 tools/plot_results.py [figures] [--results results/] [--out plots/]
    python3 tools/plot_results.py metrics metrics.jsonl [--out plots/]
    python3 tools/plot_results.py flight flight.jsonl [--out plots/]
    python3 tools/plot_results.py wire metrics.jsonl [--out plots/]
    python3 tools/plot_results.py perf BENCH_a.json [BENCH_b.json ...] \
        [--out plots/]

`figures` (the default) produces fig4/5/6 (time-vs-accuracy fronts), fig7
(loss/accuracy curves), fig8 (sparsity sweep), and fig9 (bits per state
change) as PNGs, mirroring the paper's Figures 4-9.

`metrics` plots a --metrics-out step log (loss vs. step, push/pull bits per
value vs. step) written by examples/ and bench/ binaries.

`flight` renders a flight-recorder dump (the JSONL the black box writes on
an error-severity health event, crash signal, or Flush): loss and residual
L2 over the trailing steps, with a vertical line at every health event.

`perf` plots BENCH_*.json files from bench_codec / bench_step (the perf
regression gate's machine-readable output). One file gives a bar chart of
its metrics grouped by codec/family; several files (e.g. the same bench
across commits) add a trajectory plot with one line per metric, so a slow
drift that never trips the 10% gate is still visible.

`wire` compares measured TCP traffic against the analytic accounting for a
--metrics-out JSONL written by the distributed runtime's server
(examples/distributed_training). The per-step records carry the codec
payload bytes per direction (the same accounting net::TrafficMeter does for
simulated runs); the summary record's rpc/* counters carry what actually
crossed the sockets, so the gap between the two is the protocol's framing
and control overhead.

Requires matplotlib.
"""
import argparse
import csv
import json
import os
from collections import defaultdict


def read_csv(path):
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def series_by(rows, key):
    groups = defaultdict(list)
    for row in rows:
        groups[row[key]].append(row)
    return groups


def plot_fig456(results_dir, out_dir, plt):
    rows = read_csv(os.path.join(results_dir, "fig456.csv"))
    for fig_idx, col, label in [
        (4, "minutes_10mbps", "10 Mbps"),
        (5, "minutes_100mbps", "100 Mbps"),
        (6, "minutes_1gbps", "1 Gbps"),
    ]:
        plt.figure(figsize=(7, 5))
        for design, pts in series_by(rows, "design").items():
            pts = sorted(pts, key=lambda r: float(r["steps"]))
            xs = [float(p[col]) for p in pts]
            ys = [float(p["accuracy"]) for p in pts]
            plt.plot(xs, ys, marker="o", label=design)
        plt.xlabel("Total training time (minutes)")
        plt.ylabel("Test accuracy (%)")
        plt.title(f"Figure {fig_idx}: time vs accuracy @ {label}")
        plt.legend(fontsize=7)
        plt.grid(alpha=0.3)
        path = os.path.join(out_dir, f"fig{fig_idx}.png")
        plt.savefig(path, dpi=140, bbox_inches="tight")
        plt.close()
        print("wrote", path)


def plot_fig7(results_dir, out_dir, plt):
    fig, axes = plt.subplots(1, 2, figsize=(12, 4.5))
    loss_rows = read_csv(os.path.join(results_dir, "fig7_loss.csv"))
    for design, pts in series_by(loss_rows, "design").items():
        pts = sorted(pts, key=lambda r: int(r["step"]))
        # Light smoothing for readability.
        ys, acc = [], None
        for p in pts:
            v = float(p["training_loss"])
            acc = v if acc is None else 0.9 * acc + 0.1 * v
            ys.append(acc)
        axes[0].plot([int(p["step"]) for p in pts], ys, label=design)
    axes[0].set_xlabel("Training steps")
    axes[0].set_ylabel("Training loss")
    axes[0].grid(alpha=0.3)
    axes[0].legend(fontsize=7)
    acc_rows = read_csv(os.path.join(results_dir, "fig7_accuracy.csv"))
    for design, pts in series_by(acc_rows, "design").items():
        pts = sorted(pts, key=lambda r: int(r["step"]))
        axes[1].plot([int(p["step"]) for p in pts],
                     [float(p["test_accuracy"]) for p in pts], label=design)
    axes[1].set_xlabel("Training steps")
    axes[1].set_ylabel("Test accuracy (%)")
    axes[1].grid(alpha=0.3)
    axes[1].legend(fontsize=7)
    fig.suptitle("Figure 7: training loss (left) and test accuracy (right)")
    path = os.path.join(out_dir, "fig7.png")
    fig.savefig(path, dpi=140, bbox_inches="tight")
    plt.close(fig)
    print("wrote", path)


def plot_fig8(results_dir, out_dir, plt):
    rows = read_csv(os.path.join(results_dir, "fig8.csv"))
    plt.figure(figsize=(7, 5))
    for s, pts in series_by(rows, "s").items():
        pts = sorted(pts, key=lambda r: float(r["steps"]))
        plt.plot([float(p["minutes_10mbps"]) for p in pts],
                 [float(p["accuracy"]) for p in pts], marker="o",
                 label=f"3LC (s={s})")
    plt.xlabel("Total training time (minutes)")
    plt.ylabel("Test accuracy (%)")
    plt.title("Figure 8: sparsity-multiplier sweep @ 10 Mbps")
    plt.legend(fontsize=8)
    plt.grid(alpha=0.3)
    path = os.path.join(out_dir, "fig8.png")
    plt.savefig(path, dpi=140, bbox_inches="tight")
    plt.close()
    print("wrote", path)


def plot_fig9(results_dir, out_dir, plt):
    rows = read_csv(os.path.join(results_dir, "fig9.csv"))
    groups = series_by(rows, "s")
    fig, axes = plt.subplots(1, len(groups), figsize=(6 * len(groups), 4.5),
                             squeeze=False)
    for ax, (s, pts) in zip(axes[0], sorted(groups.items())):
        pts = sorted(pts, key=lambda r: int(r["step"]))
        steps = [int(p["step"]) for p in pts]
        ax.plot(steps, [float(p["no_zre_bits_per_value"]) for p in pts],
                label="Without ZRE", linestyle="--")
        ax.plot(steps, [float(p["push_bits_per_value"]) for p in pts],
                label="With ZRE (push)", alpha=0.8)
        ax.plot(steps, [float(p["pull_bits_per_value"]) for p in pts],
                label="With ZRE (pull)", alpha=0.8)
        ax.set_xlabel("Training steps")
        ax.set_ylabel("Compressed size per state change (bits)")
        ax.set_title(f"s = {s}")
        ax.set_ylim(bottom=0)
        ax.grid(alpha=0.3)
        ax.legend(fontsize=8)
    fig.suptitle("Figure 9: compressed bits per state change")
    path = os.path.join(out_dir, "fig9.png")
    fig.savefig(path, dpi=140, bbox_inches="tight")
    plt.close(fig)
    print("wrote", path)


def read_step_records(path):
    """Parse a --metrics-out JSONL file into its per-step records."""
    steps = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") == "step":
                steps.append(rec)
    if not steps:
        raise SystemExit(f"no step records found in {path}")
    return steps


def plot_metrics(jsonl_path, out_dir, plt):
    steps = read_step_records(jsonl_path)
    xs = [s["step"] for s in steps]

    fig, axes = plt.subplots(1, 2, figsize=(12, 4.5))
    axes[0].plot(xs, [s["loss"] for s in steps], label="training loss")
    axes[0].set_xlabel("Training steps")
    axes[0].set_ylabel("Training loss")
    axes[0].grid(alpha=0.3)
    axes[0].legend(fontsize=8)

    axes[1].plot(xs, [s["push_bits_per_value"] for s in steps], label="push",
                 alpha=0.8)
    axes[1].plot(xs, [s["pull_bits_per_value"] for s in steps], label="pull",
                 alpha=0.8)
    axes[1].set_xlabel("Training steps")
    axes[1].set_ylabel("Compressed size per state change (bits)")
    axes[1].set_ylim(bottom=0)
    axes[1].grid(alpha=0.3)
    axes[1].legend(fontsize=8)

    base = os.path.splitext(os.path.basename(jsonl_path))[0]
    fig.suptitle(f"Telemetry: {base} (loss and bits/value per step)")
    path = os.path.join(out_dir, f"{base}.png")
    fig.savefig(path, dpi=140, bbox_inches="tight")
    plt.close(fig)
    print("wrote", path)


def read_flight_dump(path):
    """Parse a flight-recorder dump into (step records, health events)."""
    steps, events = [], []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") == "step":
                steps.append(rec)
            elif rec.get("type") == "health_event":
                events.append(rec)
    if not steps and not events:
        raise SystemExit(f"no flight records found in {path}")
    return steps, events


def plot_flight(jsonl_path, out_dir, plt):
    steps, events = read_flight_dump(jsonl_path)
    xs = [s["step"] for s in steps]

    fig, axes = plt.subplots(1, 2, figsize=(12, 4.5))
    # null in the JSONL (serialized NaN/Inf) plots as a gap.
    losses = [s["loss"] if s.get("loss") is not None else float("nan")
              for s in steps]
    axes[0].plot(xs, losses, marker=".", label="training loss")
    axes[0].set_xlabel("Training steps")
    axes[0].set_ylabel("Training loss")
    axes[0].grid(alpha=0.3)

    residuals = defaultdict(lambda: ([], []))
    for s in steps:
        for t in s.get("tensors", []):
            l2 = t.get("push_residual_l2")
            if l2 is not None:
                sx, sy = residuals[t["name"]]
                sx.append(s["step"])
                sy.append(l2)
    for name, (sx, sy) in sorted(residuals.items()):
        axes[1].plot(sx, sy, alpha=0.8, label=name)
    axes[1].set_xlabel("Training steps")
    axes[1].set_ylabel("Push residual L2 (error-accumulation buffer)")
    axes[1].grid(alpha=0.3)

    severity_color = {"error": "red", "warn": "orange"}
    for e in events:
        color = severity_color.get(e.get("severity"), "gray")
        for ax in axes:
            ax.axvline(e["step"], color=color, linestyle=":", alpha=0.8)
        axes[0].annotate(e.get("detector", "?"), (e["step"], 0.98),
                         xycoords=("data", "axes fraction"), rotation=90,
                         fontsize=7, va="top", color=color)
    if events:
        first = events[0]
        print(f"{len(events)} health event(s); first: "
              f"{first.get('severity')} [{first.get('detector')}] "
              f"step {first.get('step')}: {first.get('message')}")
    axes[0].legend(fontsize=8)
    if residuals:
        axes[1].legend(fontsize=7)

    base = os.path.splitext(os.path.basename(jsonl_path))[0]
    fig.suptitle(f"Flight recorder: {base} "
                 f"({len(steps)} trailing steps, {len(events)} events)")
    path = os.path.join(out_dir, f"{base}.png")
    fig.savefig(path, dpi=140, bbox_inches="tight")
    plt.close(fig)
    print("wrote", path)


def read_wire_log(path):
    """Parse a server metrics JSONL into (step records, summary metrics)."""
    steps, summary = [], None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") == "step":
                steps.append(rec)
            elif rec.get("type") == "summary":
                summary = rec.get("metrics", {})
    if not steps:
        raise SystemExit(f"no step records found in {path}")
    if summary is None:
        raise SystemExit(
            f"no summary record in {path} (was Telemetry::Flush called?)")
    return steps, summary


def counter_value(summary, name):
    metric = summary.get(name)
    return float(metric["value"]) if metric else 0.0


def plot_wire(jsonl_path, out_dir, plt):
    steps, summary = read_wire_log(jsonl_path)
    nsteps = len(steps)
    xs = [s["step"] for s in steps]
    push = [s["push_bytes"] for s in steps]
    pull = [s["pull_bytes"] for s in steps]

    # Measured on-wire totals from the transport counters. On the server,
    # rx is the push direction (workers -> server) and tx the pull
    # direction (server -> workers), each including frame headers and the
    # handshake/stats/shutdown control messages.
    wire_rx = counter_value(summary, "rpc/wire_rx_bytes")
    wire_tx = counter_value(summary, "rpc/wire_tx_bytes")
    payload_push = counter_value(summary, "rpc/push_payload_bytes")
    payload_pull = counter_value(summary, "rpc/pull_payload_bytes")
    if wire_rx == 0.0 and wire_tx == 0.0:
        raise SystemExit("summary has no rpc/* counters — is this JSONL "
                         "from the distributed runtime's server?")

    fig, axes = plt.subplots(1, 2, figsize=(12, 4.5))
    axes[0].plot(xs, push, label="push payload (analytic)", alpha=0.8)
    axes[0].plot(xs, pull, label="pull payload (analytic)", alpha=0.8)
    axes[0].axhline(wire_rx / nsteps, color="C0", linestyle="--",
                    label="wire rx / step (measured)")
    axes[0].axhline(wire_tx / nsteps, color="C1", linestyle="--",
                    label="wire tx / step (measured)")
    axes[0].set_xlabel("Training steps")
    axes[0].set_ylabel("Bytes per step")
    axes[0].set_ylim(bottom=0)
    axes[0].grid(alpha=0.3)
    axes[0].legend(fontsize=8)

    labels = ["push (rx)", "pull (tx)"]
    payloads = [payload_push, payload_pull]
    wires = [wire_rx, wire_tx]
    pos = range(len(labels))
    axes[1].bar([p - 0.2 for p in pos], payloads, width=0.4,
                label="codec payload")
    axes[1].bar([p + 0.2 for p in pos], wires, width=0.4,
                label="on the wire")
    axes[1].set_xticks(list(pos))
    axes[1].set_xticklabels(labels)
    axes[1].set_ylabel("Total bytes")
    axes[1].grid(alpha=0.3, axis="y")
    axes[1].legend(fontsize=8)

    for label, payload, wire in zip(labels, payloads, wires):
        overhead = (wire - payload) / wire * 100.0 if wire else 0.0
        print(f"{label}: payload {payload:.0f} B, wire {wire:.0f} B "
              f"({overhead:.1f}% framing/control overhead)")

    base = os.path.splitext(os.path.basename(jsonl_path))[0]
    fig.suptitle(f"Wire traffic: {base} ({nsteps} steps; measured rpc/* "
                 f"counters vs analytic payload accounting)")
    path = os.path.join(out_dir, f"{base}_wire.png")
    fig.savefig(path, dpi=140, bbox_inches="tight")
    plt.close(fig)
    print("wrote", path)


def read_bench(path):
    """Parse one BENCH_*.json (schema threelc-bench-v1)."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "threelc-bench-v1" or "metrics" not in data:
        raise SystemExit(f"{path}: not a threelc-bench-v1 file")
    return data


def plot_perf(paths, out_dir, plt):
    benches = [read_bench(p) for p in paths]
    latest = benches[-1]
    bench_name = latest.get("bench", "bench")

    # Bar chart of the latest file: one group per metric family (the text
    # before the first '/'), one bar per series within it.
    families = defaultdict(list)
    for key, m in sorted(latest["metrics"].items()):
        family, _, series = key.partition("/")
        families[family].append((series or key, float(m["value"]),
                                 m.get("unit", "")))
    fig, axes = plt.subplots(1, len(families),
                             figsize=(1.2 + 4.2 * len(families), 4.8),
                             squeeze=False)
    for ax, (family, entries) in zip(axes[0], sorted(families.items())):
        labels = [e[0] for e in entries]
        values = [e[1] for e in entries]
        ax.bar(range(len(entries)), values, color="C0")
        ax.set_xticks(range(len(entries)))
        ax.set_xticklabels(labels, rotation=60, ha="right", fontsize=7)
        ax.set_title(family, fontsize=9)
        ax.set_ylabel(entries[0][2])
        ax.grid(alpha=0.3, axis="y")
    fig.suptitle(f"Perf: {bench_name} @ {latest.get('commit', '?')[:12]}")
    path = os.path.join(out_dir, f"perf_{bench_name}.png")
    fig.savefig(path, dpi=140, bbox_inches="tight")
    plt.close(fig)
    print("wrote", path)

    # Trajectory across files (commits): one line per metric, normalized to
    # its first value so throughput and latency share an axis.
    if len(benches) < 2:
        return
    plt.figure(figsize=(9, 5))
    keys = sorted(set().union(*(b["metrics"].keys() for b in benches)))
    xs = range(len(benches))
    for key in keys:
        series = [b["metrics"].get(key, {}).get("value") for b in benches]
        first = next((v for v in series if v), None)
        if not first:
            continue
        plt.plot(xs, [v / first if v is not None else float("nan")
                      for v in series], marker="o", label=key, alpha=0.7)
    plt.xticks(list(xs),
               [b.get("commit", "?")[:10] for b in benches], rotation=30,
               ha="right", fontsize=7)
    plt.ylabel("Relative to first run (1.0 = no change)")
    plt.axhline(1.0, color="gray", linestyle=":")
    plt.grid(alpha=0.3)
    plt.legend(fontsize=6, ncol=2)
    plt.title(f"Perf trajectory: {bench_name} across {len(benches)} runs")
    path = os.path.join(out_dir, f"perf_{bench_name}_trajectory.png")
    plt.savefig(path, dpi=140, bbox_inches="tight")
    plt.close()
    print("wrote", path)


def load_matplotlib():
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        raise SystemExit("matplotlib is required: pip install matplotlib")
    return plt


def main():
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers(dest="command")
    figures = sub.add_parser("figures", help="plot paper figures from CSVs")
    figures.add_argument("--results", default="results")
    figures.add_argument("--out", default="plots")
    metrics = sub.add_parser("metrics",
                             help="plot a --metrics-out step-log JSONL")
    metrics.add_argument("jsonl", help="path to metrics.jsonl")
    metrics.add_argument("--out", default="plots")
    flight = sub.add_parser("flight",
                            help="plot a flight-recorder dump JSONL")
    flight.add_argument("jsonl", help="path to flight.jsonl")
    flight.add_argument("--out", default="plots")
    wire = sub.add_parser("wire",
                          help="measured wire bytes vs analytic payload "
                               "accounting for a distributed-runtime run")
    wire.add_argument("jsonl", help="path to the server's metrics.jsonl")
    wire.add_argument("--out", default="plots")
    perf = sub.add_parser("perf",
                          help="plot BENCH_*.json perf-gate results; pass "
                               "several files (oldest first) for a "
                               "cross-commit trajectory")
    perf.add_argument("bench_json", nargs="+",
                      help="BENCH_*.json files, oldest first")
    perf.add_argument("--out", default="plots")
    # Default to `figures` so the historical bare invocation keeps working.
    parser.set_defaults(command="figures", results="results", out="plots")
    args = parser.parse_args()

    plt = load_matplotlib()
    os.makedirs(args.out, exist_ok=True)
    if args.command == "metrics":
        plot_metrics(args.jsonl, args.out, plt)
        return
    if args.command == "flight":
        plot_flight(args.jsonl, args.out, plt)
        return
    if args.command == "wire":
        plot_wire(args.jsonl, args.out, plt)
        return
    if args.command == "perf":
        plot_perf(args.bench_json, args.out, plt)
        return
    for fn in (plot_fig456, plot_fig7, plot_fig8, plot_fig9):
        name = fn.__name__
        try:
            fn(args.results, args.out, plt)
        except FileNotFoundError as e:
            print(f"skipping {name}: {e}")


if __name__ == "__main__":
    main()
