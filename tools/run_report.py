#!/usr/bin/env python3
"""End-of-run report: join server step JSONL with a /clusterz snapshot.

The server's --metrics-out JSONL records the critical path (one line per
step: loss, wall time, contributors); the /clusterz snapshot holds the
per-worker view shipped in-band over TELEMETRY frames (phase histograms,
traffic, straggler attribution). Neither alone answers "who made this run
slow and why" — this tool joins them into one human-readable summary:

  - run shape: steps logged, contributors, final loss, step-wall quantiles,
  - per-worker step-phase table (p50/p95/p99 ms per phase),
  - barrier-wait attribution: slow steps per worker, summed wait, and the
    dominant cause (compute / encode / network) per worker, ending in a
    single "straggler: worker N (...)" line naming the fleet's slowest
    worker — the line CI asserts on; a worker whose lease expired is
    tagged "hung", and a lease-evicted worker absent from the workers map
    is still named ("straggler: worker N (hung; ...)"),
  - liveness: per-worker last-heartbeat age and lease-expiry counts
    (expiries survive eviction so the cause stays visible),
  - storage: server checkpoint health (writes, failures, fallbacks,
    generations on disk, degraded state) joined with the checkpoint
    stage's p50/p95 from the step log,
  - traffic per worker and the per-direction compression ratio.

Usage:
  run_report.py --clusterz cluster.json [--server-log metrics.jsonl] \
      [-o report.txt]

Exit codes: 0 on success (report written/printed), 1 on unreadable or
schema-less input. stdlib only.
"""

import argparse
import json
import sys

PHASES = ["forward_backward", "encode", "push", "pull_wait", "decode"]


def load_clusterz(path):
    with open(path) as f:
        snap = json.load(f)
    if "workers" not in snap or "straggler" not in snap:
        raise ValueError(f"{path}: not a /clusterz snapshot "
                         "(missing workers/straggler)")
    return snap


def load_server_steps(path):
    """type==step lines from the server's --metrics-out JSONL."""
    steps = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # tolerate a torn final line from a killed run
            if rec.get("type") == "step":
                steps.append(rec)
    return steps


def quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def dominant_cause(causes):
    """Largest attributed cause; network wins ties (it absorbs the most
    unrelated skew), mirroring the server-side attribution order."""
    best, best_count = None, 0
    for name in ("network", "compute", "encode"):
        if causes.get(name, 0) > best_count:
            best, best_count = name, causes[name]
    return best, best_count


def fmt_ms(ns):
    return f"{ns / 1e6:.2f}"


def build_report(snap, steps):
    out = []
    workers = snap["workers"]
    fleet = snap.get("fleet", {})
    straggler = snap.get("straggler", {})
    out.append("== 3LC run report ==")

    # --- run shape from the server step log --------------------------------
    if steps:
        walls = sorted(s.get("step_wall_ms", 0.0) for s in steps)
        final = steps[-1]
        out.append(f"steps logged: {len(steps)}  "
                   f"final loss: {final.get('loss', float('nan')):.6f}  "
                   f"contributors (last step): {final.get('contributors', 0)}")
        out.append(f"step wall ms: p50 {quantile(walls, 0.50):.2f}  "
                   f"p95 {quantile(walls, 0.95):.2f}  "
                   f"p99 {quantile(walls, 0.99):.2f}")
    out.append(f"telemetry: {fleet.get('records', 0)} worker records, "
               f"{straggler.get('barriers_observed', 0)} barriers observed, "
               f"{straggler.get('flips', 0)} straggler flips")
    out.append("")

    # --- per-worker phase table --------------------------------------------
    out.append("-- per-worker step phases (ms) --")
    header = f"{'worker':>6}  {'phase':<16} {'p50':>9} {'p95':>9} {'p99':>9}"
    out.append(header)
    for wid in sorted(workers, key=int):
        phases = workers[wid].get("phases", {})
        for phase in PHASES:
            p = phases.get(phase)
            if p is None:
                continue
            out.append(f"{wid:>6}  {phase:<16} {fmt_ms(p['p50_ns']):>9} "
                       f"{fmt_ms(p['p95_ns']):>9} {fmt_ms(p['p99_ns']):>9}")
    out.append("")

    # --- barrier-wait attribution ------------------------------------------
    out.append("-- barrier-wait attribution --")
    out.append(f"{'worker':>6} {'slow_steps':>10} {'wait_ms_sum':>12} "
               f"{'dominant_cause':>15}")
    worst_id, worst_slow = None, -1
    for wid in sorted(workers, key=int):
        w = workers[wid]
        slow = w.get("straggler_steps", 0)
        cause, _ = dominant_cause(w.get("straggler_causes", {}))
        out.append(f"{wid:>6} {slow:>10} "
                   f"{w.get('barrier_wait_ms_sum', 0.0):>12.2f} "
                   f"{cause or '-':>15}")
        if slow > worst_slow:
            worst_id, worst_slow = wid, slow
    expiries = snap.get("liveness", {}).get("lease_expiries", {})
    hung = {wid for wid, n in expiries.items() if n > 0}
    current = straggler.get("current", -1)
    named = str(current) if current >= 0 else worst_id
    conventional = named is not None and named in workers and worst_slow >= 0
    named_slow = (workers[named].get("straggler_steps", 0)
                  if conventional else 0)
    if hung and (not conventional
                 or (named_slow == 0 and named not in hung)):
        # A hung worker trumps a straggler with nothing to say — notably
        # a lease-evicted one that is gone from the workers map but whose
        # expiry count survives in the liveness section.
        wid = max(hung, key=lambda i: (expiries[i], -int(i)))
        where = "evicted" if wid not in workers else "recovered"
        out.append(f"straggler: worker {wid} "
                   f"(hung; {expiries[wid]} lease expiries, {where})")
    elif conventional:
        w = workers[named]
        cause, count = dominant_cause(w.get("straggler_causes", {}))
        tag = "hung; " if named in hung else ""
        if named_slow > 0 and cause:
            out.append(f"straggler: worker {named} "
                       f"({tag}{named_slow} slow steps, "
                       f"dominant cause: {cause}, "
                       f"{count}/{named_slow} attributed)")
        else:
            out.append(f"straggler: worker {named} "
                       f"({tag}no attributed waits)")
    else:
        out.append("straggler: none observed")
    out.append("")

    # --- liveness ----------------------------------------------------------
    ages = {wid: w.get("last_heartbeat_age_ms", -1)
            for wid, w in workers.items()}
    if expiries or any(age >= 0 for age in ages.values()):
        out.append("-- liveness --")
        out.append(f"{'worker':>6} {'hb_age_ms':>10} {'lease_expiries':>15}")
        for wid in sorted(set(workers) | set(expiries), key=int):
            age = ages.get(wid, -1)
            marks = (["hung"] if wid in hung else []) + \
                    (["evicted"] if wid not in workers else [])
            note = f"  ({'; '.join(marks)})" if marks else ""
            out.append(f"{wid:>6} {f'{age:.0f}' if age >= 0 else '-':>10} "
                       f"{expiries.get(wid, 0):>15}{note}")
        out.append("")

    # --- checkpoint storage health -----------------------------------------
    # The "storage" section appears in /clusterz once the server reported
    # checkpoint activity; the checkpoint-stage latency comes from the
    # step log's phases_ms. Either source alone still prints.
    storage = snap.get("storage")
    ckpt_ms = sorted(s["phases_ms"]["checkpoint"] for s in steps
                     if "checkpoint" in s.get("phases_ms", {}))
    if storage is not None or ckpt_ms:
        out.append("-- storage (server checkpoints) --")
        if storage is not None:
            state = "DEGRADED (writes failing; recovery at risk)" \
                if storage.get("degraded") else "healthy"
            out.append(f"state: {state}")
            out.append(f"checkpoints written: {storage.get('checkpoints', 0)}"
                       f"  write failures: {storage.get('write_failures', 0)}"
                       f"  fallbacks: {storage.get('fallbacks', 0)}")
            out.append(f"generations on disk: "
                       f"{storage.get('generations', 0)}  "
                       f"last write: {storage.get('last_write_ms', 0.0):.2f} "
                       f"ms")
        if ckpt_ms:
            written = sum(1 for ms in ckpt_ms if ms > 0.0)
            out.append(f"checkpoint stage ms over {len(ckpt_ms)} steps "
                       f"({written} with a write): "
                       f"p50 {quantile(ckpt_ms, 0.50):.2f}  "
                       f"p95 {quantile(ckpt_ms, 0.95):.2f}")
        out.append("")

    # --- traffic and compression -------------------------------------------
    out.append("-- traffic --")
    out.append(f"{'worker':>6} {'bytes_out':>12} {'bytes_in':>12} "
               f"{'records':>8} {'rejoins':>8}")
    for wid in sorted(workers, key=int):
        w = workers[wid]
        out.append(f"{wid:>6} {w.get('bytes_out', 0):>12} "
                   f"{w.get('bytes_in', 0):>12} {w.get('records', 0):>8} "
                   f"{w.get('rejoins', 0):>8}")
    push_ratio = fleet.get("compression_ratio_push", 0.0)
    pull_ratio = fleet.get("compression_ratio_pull", 0.0)
    out.append(f"compression ratio: push {push_ratio:.2f}x, "
               f"pull {pull_ratio:.2f}x")
    # Stage-1 vs end-to-end: when a second-stage block codec ran, the wire
    # ratio above exceeds the tensor-codec-only ratio; report the split so
    # the block codec's contribution is visible. Older snapshots carry no
    # stage1 fields (ratio 0) and print nothing extra.
    push_s1 = fleet.get("compression_ratio_push_stage1", 0.0)
    pull_s1 = fleet.get("compression_ratio_pull_stage1", 0.0)
    if push_s1 > 0.0 or pull_s1 > 0.0:
        out.append(f"  stage 1 (tensor codec): push {push_s1:.2f}x, "
                   f"pull {pull_s1:.2f}x")
        if push_s1 > 0.0 and pull_s1 > 0.0:
            out.append(f"  stage 2 (block codec): push "
                       f"{push_ratio / push_s1:.2f}x, "
                       f"pull {pull_ratio / pull_s1:.2f}x")
    return "\n".join(out) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--clusterz", required=True,
                    help="saved /clusterz JSON snapshot")
    ap.add_argument("--server-log", default=None,
                    help="server --metrics-out JSONL (optional)")
    ap.add_argument("-o", "--out", default=None,
                    help="write the report here instead of stdout")
    args = ap.parse_args()

    try:
        snap = load_clusterz(args.clusterz)
        steps = load_server_steps(args.server_log) if args.server_log else []
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"run_report: {e}", file=sys.stderr)
        return 1

    report = build_report(snap, steps)
    if args.out:
        with open(args.out, "w") as f:
            f.write(report)
        print(f"run_report: wrote {args.out}")
    else:
        sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
