// Codec kernel microbenchmarks (google-benchmark).
//
// Backs the paper's computation-overhead claims (§5.3): 3LC's stages are
// cheap vectorizable passes; MQE 1-bit pays extra passes for partition
// means; sparsification pays sampling + gather. Also demonstrates that
// encode time is linear in tensor elements, which justifies the time
// model's element_scale extrapolation (DESIGN.md).
#include <benchmark/benchmark.h>

#include <vector>

#include "compress/factory.h"
#include "compress/quantize3.h"
#include "compress/quartic.h"
#include "compress/zero_run.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/stage_profiler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

using namespace threelc;
using compress::CodecConfig;

namespace {

tensor::Tensor MakeInput(std::int64_t n, double zero_prob = 0.0) {
  util::Rng rng(99);
  tensor::Tensor t(tensor::Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    t[static_cast<std::size_t>(i)] =
        rng.Bernoulli(zero_prob) ? 0.0f : rng.NormalFloat(0.0f, 1.0f);
  }
  return t;
}

void BM_Quantize3(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto in = MakeInput(n);
  std::vector<std::int8_t> out(static_cast<std::size_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compress::Quantize3(in.data(), static_cast<std::size_t>(n), 1.0f,
                            out.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Quantize3)->Range(1 << 10, 1 << 20);

void BM_Quantize3WithResidual(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto in = MakeInput(n);
  std::vector<std::int8_t> out(static_cast<std::size_t>(n));
  std::vector<float> residual(static_cast<std::size_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::Quantize3WithResidual(
        in.data(), static_cast<std::size_t>(n), 1.0f, out.data(),
        residual.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Quantize3WithResidual)->Range(1 << 10, 1 << 20);

void BM_QuarticEncode(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto in = MakeInput(n);
  std::vector<std::int8_t> ternary(static_cast<std::size_t>(n));
  compress::Quantize3(in.data(), static_cast<std::size_t>(n), 1.0f,
                      ternary.data());
  util::ByteBuffer out;
  for (auto _ : state) {
    out.Clear();
    compress::QuarticEncode(ternary.data(), static_cast<std::size_t>(n), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuarticEncode)->Range(1 << 10, 1 << 20);

void BM_QuarticDecode(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto in = MakeInput(n);
  std::vector<std::int8_t> ternary(static_cast<std::size_t>(n));
  compress::Quantize3(in.data(), static_cast<std::size_t>(n), 1.0f,
                      ternary.data());
  util::ByteBuffer encoded;
  compress::QuarticEncode(ternary.data(), static_cast<std::size_t>(n),
                          encoded);
  std::vector<std::int8_t> decoded(static_cast<std::size_t>(n));
  for (auto _ : state) {
    compress::QuarticDecode(encoded.span(), static_cast<std::size_t>(n),
                            decoded.data());
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuarticDecode)->Range(1 << 10, 1 << 20);

void BM_TwoBitEncode(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto in = MakeInput(n);
  std::vector<std::int8_t> ternary(static_cast<std::size_t>(n));
  compress::Quantize3(in.data(), static_cast<std::size_t>(n), 1.0f,
                      ternary.data());
  util::ByteBuffer out;
  for (auto _ : state) {
    out.Clear();
    compress::TwoBitEncode(ternary.data(), static_cast<std::size_t>(n), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TwoBitEncode)->Range(1 << 14, 1 << 18);

// ZRE cost depends on input sparsity: denser zero runs mean fewer output
// bytes and faster scans.
void BM_ZeroRunEncode(benchmark::State& state) {
  const std::int64_t n = 1 << 18;
  const double zero_prob = static_cast<double>(state.range(0)) / 100.0;
  auto in = MakeInput(n, zero_prob);
  std::vector<std::int8_t> ternary(static_cast<std::size_t>(n));
  compress::Quantize3(in.data(), static_cast<std::size_t>(n), 1.0f,
                      ternary.data());
  util::ByteBuffer quartic;
  compress::QuarticEncode(ternary.data(), static_cast<std::size_t>(n),
                          quartic);
  util::ByteBuffer out;
  for (auto _ : state) {
    out.Clear();
    compress::ZeroRunEncode(quartic.span(), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["zre_bytes"] = static_cast<double>(out.size());
}
BENCHMARK(BM_ZeroRunEncode)->Arg(0)->Arg(50)->Arg(90)->Arg(99);

void BM_ZeroRunDecode(benchmark::State& state) {
  const std::int64_t n = 1 << 18;
  auto in = MakeInput(n, 0.9);
  std::vector<std::int8_t> ternary(static_cast<std::size_t>(n));
  compress::Quantize3(in.data(), static_cast<std::size_t>(n), 1.0f,
                      ternary.data());
  util::ByteBuffer quartic;
  compress::QuarticEncode(ternary.data(), static_cast<std::size_t>(n),
                          quartic);
  util::ByteBuffer encoded;
  compress::ZeroRunEncode(quartic.span(), encoded);
  util::ByteBuffer decoded;
  for (auto _ : state) {
    decoded.Clear();
    compress::ZeroRunDecode(encoded.span(), decoded, quartic.size());
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ZeroRunDecode);

// Full-codec encode throughput for every compared design — the per-value
// CPU cost column behind Table 1's computation-overhead story.
void BM_CodecEncode(benchmark::State& state,
                    const compress::CodecConfig& config) {
  const std::int64_t n = 1 << 17;
  auto codec = compress::MakeCompressor(config);
  auto in = MakeInput(n);
  auto ctx = codec->MakeContext(in.shape());
  util::ByteBuffer out;
  for (auto _ : state) {
    out.Clear();
    codec->Encode(in, *ctx, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["payload_bytes"] = static_cast<double>(out.size());
}
BENCHMARK_CAPTURE(BM_CodecEncode, float32, CodecConfig::Float32());
BENCHMARK_CAPTURE(BM_CodecEncode, int8, CodecConfig::EightBit());
BENCHMARK_CAPTURE(BM_CodecEncode, stoch3_qe, CodecConfig::StochThreeQE());
BENCHMARK_CAPTURE(BM_CodecEncode, mqe_1bit, CodecConfig::MqeOneBit());
BENCHMARK_CAPTURE(BM_CodecEncode, sparse25,
                  CodecConfig::Sparsification(0.25f));
BENCHMARK_CAPTURE(BM_CodecEncode, sparse5, CodecConfig::Sparsification(0.05f));
BENCHMARK_CAPTURE(BM_CodecEncode, threelc_s100, CodecConfig::ThreeLC(1.00f));
BENCHMARK_CAPTURE(BM_CodecEncode, threelc_s175, CodecConfig::ThreeLC(1.75f));
BENCHMARK_CAPTURE(BM_CodecEncode, threelc_s190, CodecConfig::ThreeLC(1.90f));

void BM_CodecDecode(benchmark::State& state,
                    const compress::CodecConfig& config) {
  const std::int64_t n = 1 << 17;
  auto codec = compress::MakeCompressor(config);
  auto in = MakeInput(n);
  auto ctx = codec->MakeContext(in.shape());
  util::ByteBuffer encoded;
  codec->Encode(in, *ctx, encoded);
  tensor::Tensor out(in.shape());
  for (auto _ : state) {
    util::ByteReader reader(encoded);
    codec->Decode(reader, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_CodecDecode, float32, CodecConfig::Float32());
BENCHMARK_CAPTURE(BM_CodecDecode, int8, CodecConfig::EightBit());
BENCHMARK_CAPTURE(BM_CodecDecode, mqe_1bit, CodecConfig::MqeOneBit());
BENCHMARK_CAPTURE(BM_CodecDecode, threelc_s100, CodecConfig::ThreeLC(1.00f));
BENCHMARK_CAPTURE(BM_CodecDecode, threelc_s175, CodecConfig::ThreeLC(1.75f));

// --- Observability overhead (src/obs) -------------------------------------
// The disabled-registry path is the one every hot loop pays when telemetry
// is off; it must stay a relaxed load + branch (the "<5% step overhead"
// budget in ISSUE/DESIGN terms is dominated by this).

void BM_MetricsCounterDisabled(benchmark::State& state) {
  obs::MetricsRegistry registry;  // disabled by default
  obs::Counter* counter = registry.counter("bench/disabled");
  for (auto _ : state) {
    counter->Add(1.0);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterDisabled);

void BM_MetricsCounterEnabled(benchmark::State& state) {
  obs::MetricsRegistry registry;
  registry.set_enabled(true);
  obs::Counter* counter = registry.counter("bench/enabled");
  for (auto _ : state) {
    counter->Add(1.0);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterEnabled);

void BM_ScopedSpanDisabled(benchmark::State& state) {
  obs::Tracer tracer;  // disabled by default
  for (auto _ : state) {
    obs::ScopedSpan span(&tracer, "bench", 0);
    benchmark::DoNotOptimize(&tracer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedSpanDisabled);

// Full-codec encode with the stats sink attached — the per-tensor cost the
// trainer pays per step when --metrics-out requests per-tensor records.
void BM_CodecEncodeWithStats(benchmark::State& state) {
  const std::int64_t n = 1 << 17;
  auto codec = compress::MakeCompressor(CodecConfig::ThreeLC(1.00f));
  auto in = MakeInput(n);
  auto ctx = codec->MakeContext(in.shape());
  util::ByteBuffer out;
  for (auto _ : state) {
    out.Clear();
    compress::EncodeStats stats;
    codec->Encode(in, *ctx, out, &stats);
    benchmark::DoNotOptimize(stats.zeros);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CodecEncodeWithStats);

// --- Live-monitoring overhead ---------------------------------------------
// The watchdog and flight recorder run once per training step (not per
// tensor element), so their cost must be microseconds against step times
// of milliseconds — i.e. within measurement noise of a training step.

obs::StepTelemetry MakeBenchStep(std::int64_t step) {
  obs::StepTelemetry st;
  st.step = step;
  st.loss = 1.0 / static_cast<double>(step + 1);
  st.lr = 0.1;
  st.push_bytes = 123456;
  st.pull_bytes = 65432;
  st.push_values = 1 << 18;
  st.pull_values = 1 << 18;
  st.push_bits_per_value = 1.2;
  st.pull_bits_per_value = 0.9;
  st.codec_seconds = 0.004;
  st.step_wall_ms = 12.0;
  st.contributors = 8;
  st.phases_ms = {{"forward_backward", 8.0}, {"encode_push", 2.0}};
  for (int t = 0; t < 4; ++t) {
    obs::TensorStepTelemetry ts;
    ts.name = "dense" + std::to_string(t) + "/W";
    ts.elements = 1 << 16;
    ts.push_bytes = 9000;
    ts.pull_bytes = 9000;
    ts.push_residual_l2 = 0.5;
    ts.pull_residual_l2 = 0.4;
    st.tensors.push_back(ts);
  }
  return st;
}

void BM_HealthMonitorObserveStep(benchmark::State& state) {
  obs::HealthMonitor monitor{obs::HealthMonitorOptions{}, nullptr};
  std::int64_t step = 0;
  for (auto _ : state) {
    monitor.ObserveStep(MakeBenchStep(step++));
    benchmark::DoNotOptimize(&monitor);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HealthMonitorObserveStep);

void BM_FlightRecorderRecordStep(benchmark::State& state) {
  obs::FlightRecorder recorder("/dev/null", obs::FlightRecorder::kDefaultCapacity);
  std::int64_t step = 0;
  for (auto _ : state) {
    recorder.RecordStep(MakeBenchStep(step++));
    benchmark::DoNotOptimize(&recorder);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderRecordStep);

// --- Stage profiler overhead ----------------------------------------------
// ScopedStage sits inside the codec inner stages and the transport read /
// write paths, so both the disabled (one relaxed load + branch) and the
// enabled (two clock reads + relaxed accumulator stores) cost must stay
// nanoseconds. bench_step enforces the end-to-end <2% budget; these keep
// the per-scope numbers visible.

void BM_StageScopeDisabled(benchmark::State& state) {
  obs::StageProfiler profiler;  // disabled by default
  for (auto _ : state) {
    obs::ScopedStage stage(&profiler, "bench");
    benchmark::DoNotOptimize(&profiler);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StageScopeDisabled);

void BM_StageScopeEnabled(benchmark::State& state) {
  obs::StageProfiler profiler;
  profiler.set_enabled(true);
  for (auto _ : state) {
    obs::ScopedStage stage(&profiler, "bench");
    benchmark::DoNotOptimize(&profiler);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StageScopeEnabled);

void BM_StageScopeEnabledNested(benchmark::State& state) {
  obs::StageProfiler profiler;
  profiler.set_enabled(true);
  for (auto _ : state) {
    obs::ScopedStage outer(&profiler, "outer");
    obs::ScopedStage inner(&profiler, "inner");
    benchmark::DoNotOptimize(&profiler);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StageScopeEnabledNested);

}  // namespace

BENCHMARK_MAIN();
