// Figure 8: training time vs. test accuracy with a varied sparsity
// multiplier (s ∈ {1.00, 1.50, 1.75, 1.90}) at 25/50/75/100% of standard
// training steps @ 10 Mbps.
#include <cstdio>

#include "bench_common.h"
#include "util/csv_writer.h"

using namespace threelc;

int main() {
  auto config = train::DefaultExperiment();
  const std::int64_t standard = bench::StandardSteps(config);
  auto data = data::MakeTeacherDataset(config.data);
  const auto budgets = bench::StepBudgets(standard);
  const auto link = net::LinkConfig::TenMbps();

  util::CsvWriter csv(bench::ResultsPath("fig8.csv"),
                      {"s", "steps", "budget_pct", "minutes_10mbps",
                       "accuracy"});

  std::printf("Figure 8: sparsity-multiplier sweep @ 10 Mbps "
              "(budgets of %lld steps)\n",
              static_cast<long long>(standard));
  std::printf("%-14s %10s %10s %16s %14s\n", "Design", "steps", "budget",
              "time (minutes)", "accuracy (%)");
  bench::PrintRule(70);

  for (float s : {1.00f, 1.50f, 1.75f, 1.90f}) {
    for (std::int64_t steps : budgets) {
      auto result =
          train::RunDesign(config, compress::CodecConfig::ThreeLC(s), steps,
                           data);
      const auto tm = train::PaperTimeModel(link, result.model_parameters);
      const double minutes =
          train::EstimateTrainingSeconds(result, tm) / 60.0;
      std::printf("%-14s %10lld %9lld%% %16.1f %14.2f\n",
                  result.codec_name.c_str(), static_cast<long long>(steps),
                  static_cast<long long>(steps * 100 / standard), minutes,
                  result.final_test_accuracy * 100.0);
      csv.NewRow()
          .Add(s)
          .Add(steps)
          .Add(steps * 100 / standard)
          .Add(minutes)
          .Add(result.final_test_accuracy * 100.0);
    }
  }
  bench::PrintRule(70);
  std::printf("CSV written to %s\n", bench::ResultsPath("fig8.csv").c_str());
  return 0;
}
