// Table 2: average traffic compression of 3LC using standard training
// steps — compression ratio and bits per state change for
// s ∈ {no-ZRE, 1.00, 1.50, 1.75, 1.90}.
//
// Like the paper, the accounting covers codec-processed traffic (small
// bypassed tensors excluded).
#include <cstdio>

#include "bench_common.h"
#include "util/csv_writer.h"

using namespace threelc;

int main() {
  auto config = train::DefaultExperiment();
  const std::int64_t steps = bench::StandardSteps(config);
  auto data = data::MakeTeacherDataset(config.data);

  std::printf("Table 2: average traffic compression of 3LC "
              "(standard steps = %lld)\n",
              static_cast<long long>(steps));
  std::printf("%-10s %22s %24s\n", "s", "Compression ratio (x)",
              "bits per state change");
  bench::PrintRule(60);

  util::CsvWriter csv(bench::ResultsPath("table2.csv"),
                      {"s", "compression_ratio", "bits_per_state_change"});

  struct Row {
    const char* label;
    compress::CodecConfig config;
  };
  compress::CodecConfig no_zre = compress::CodecConfig::ThreeLC(1.0f);
  no_zre.zero_run = false;
  const std::vector<Row> rows = {
      {"No ZRE", no_zre},
      {"1.00", compress::CodecConfig::ThreeLC(1.00f)},
      {"1.50", compress::CodecConfig::ThreeLC(1.50f)},
      {"1.75", compress::CodecConfig::ThreeLC(1.75f)},
      {"1.90", compress::CodecConfig::ThreeLC(1.90f)},
  };
  for (const auto& row : rows) {
    auto result = train::RunDesign(config, row.config, steps, data);
    std::printf("%-10s %22.1f %24.3f\n", row.label,
                result.CodecCompressionRatio(), result.CodecBitsPerValue());
    csv.NewRow()
        .Add(row.label)
        .Add(result.CodecCompressionRatio())
        .Add(result.CodecBitsPerValue());
  }
  bench::PrintRule(60);
  std::printf("CSV written to %s\n", bench::ResultsPath("table2.csv").c_str());
  return 0;
}
