// Codec throughput bench for the perf regression gate.
//
// Unlike bench_kernels (google-benchmark, human-oriented), this emits a
// machine-readable BENCH_codec.json that tools/check_perf.py diffs against
// the committed baseline in bench/baselines/. Iteration counts are pinned
// by work volume (a fixed byte budget per configuration), so two runs on
// the same machine do the same work and the JSON is directly comparable.
//
// Usage: bench_codec [--out=BENCH_codec.json] [--target-mb=256]
// The commit id is taken from $THREELC_COMMIT when set (CI exports it).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "blockcodec/block_codec.h"
#include "compress/factory.h"
#include "compress/quantize3.h"
#include "compress/quartic.h"
#include "tensor/tensor.h"
#include "util/byte_buffer.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace threelc;

namespace {

struct Metric {
  std::string key;
  double value = 0.0;
  std::string unit;
  bool higher_is_better = true;
};

tensor::Tensor MakeInput(std::int64_t n, double zero_prob) {
  util::Rng rng(99);
  tensor::Tensor t(tensor::Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    t[static_cast<std::size_t>(i)] =
        rng.Bernoulli(zero_prob) ? 0.0f : rng.NormalFloat(0.0f, 1.0f);
  }
  return t;
}

// Iterations pinned by byte volume: enough passes over the tensor to touch
// ~target_bytes of float input, clamped to [8, 4096]. Deterministic given
// (n, target_bytes), so baseline and candidate runs do identical work.
int PinnedIters(std::int64_t n, double target_bytes) {
  const double tensor_bytes = static_cast<double>(n) * sizeof(float);
  const double raw = target_bytes / tensor_bytes;
  if (raw < 8.0) return 8;
  if (raw > 4096.0) return 4096;
  return static_cast<int>(raw);
}

double GigabytesPerSecond(std::int64_t n, int iters, double seconds) {
  const double bytes =
      static_cast<double>(n) * sizeof(float) * static_cast<double>(iters);
  return bytes / seconds / 1e9;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_codec.json");
  const double target_mb = flags.GetDouble("target-mb", 256.0);
  const double target_bytes = target_mb * 1e6;

  const char* commit_env = std::getenv("THREELC_COMMIT");
  const std::string commit = commit_env != nullptr ? commit_env : "unknown";

  struct Named {
    std::string label;
    compress::CodecConfig config;
  };
  const std::vector<Named> codecs = {
      {"float32", compress::CodecConfig::Float32()},
      {"eightbit", compress::CodecConfig::EightBit()},
      {"3lc_s1.00", compress::CodecConfig::ThreeLC(1.00f)},
      {"3lc_s1.75", compress::CodecConfig::ThreeLC(1.75f)},
  };
  const std::vector<std::int64_t> sizes = {1 << 14, 1 << 16, 1 << 20};
  // Gradient-like sparsity so ZRE has runs to compress, as in training.
  const double zero_prob = 0.5;

  std::vector<Metric> metrics;
  for (const Named& named : codecs) {
    auto codec = compress::MakeCompressor(named.config);
    for (std::int64_t n : sizes) {
      tensor::Tensor in = MakeInput(n, zero_prob);
      auto ctx = codec->MakeContext(in.shape());
      const int iters = PinnedIters(n, target_bytes);
      util::ByteBuffer encoded;

      // Warm-up pass: fault in pages and settle the residual context.
      codec->Encode(in, *ctx, encoded);

      util::WallTimer encode_timer;
      for (int i = 0; i < iters; ++i) {
        encoded.Clear();
        codec->Encode(in, *ctx, encoded);
      }
      const double encode_s = encode_timer.ElapsedSeconds();

      tensor::Tensor decoded(in.shape());
      util::WallTimer decode_timer;
      for (int i = 0; i < iters; ++i) {
        util::ByteReader reader(encoded);
        codec->Decode(reader, decoded);
      }
      const double decode_s = decode_timer.ElapsedSeconds();

      const std::string suffix = named.label + "/n" + std::to_string(n);
      metrics.push_back({"encode_gbps/" + suffix,
                         GigabytesPerSecond(n, iters, encode_s), "GB/s", true});
      metrics.push_back({"decode_gbps/" + suffix,
                         GigabytesPerSecond(n, iters, decode_s), "GB/s", true});
      std::cerr << "bench_codec: " << suffix << " iters=" << iters
                << " encode=" << GigabytesPerSecond(n, iters, encode_s)
                << " GB/s decode=" << GigabytesPerSecond(n, iters, decode_s)
                << " GB/s\n";
    }
  }

  // Second-stage block codecs (paper §3.3: is heavier entropy coding worth
  // it?) over each tensor codec's real output stream, plus the bare
  // pre-ZRE quartic streams (Quantize3 + QuarticEncode with no zero-run
  // pass) — the paper's "quartic encoding" output, the natural input for
  // a general-purpose second stage. Throughput is measured against the
  // block codec's *input* bytes (the stage-1 stream), since that is the
  // byte volume the wire path pays per step; bits_per_value is end-to-end
  // — envelope bytes over original tensor elements — so the table reads
  // directly against the stage-1 row ("store", the no-op envelope-free
  // baseline).
  {
    const std::int64_t n = 1 << 20;
    tensor::Tensor in = MakeInput(n, zero_prob);
    struct Stream {
      std::string label;
      util::ByteBuffer bytes;
    };
    std::vector<Stream> streams;
    for (const Named& named : codecs) {
      auto codec = compress::MakeCompressor(named.config);
      auto ctx = codec->MakeContext(in.shape());
      Stream s{named.label, {}};
      codec->Encode(in, *ctx, s.bytes);
      streams.push_back(std::move(s));
    }
    for (float s : {1.00f, 1.75f}) {
      std::vector<std::int8_t> ternary(static_cast<std::size_t>(n));
      compress::Quantize3(in.data(), static_cast<std::size_t>(n), s,
                          ternary.data());
      char label[32];
      std::snprintf(label, sizeof(label), "quartic_s%.2f", s);
      Stream q{label, {}};
      compress::QuarticEncode(ternary.data(), static_cast<std::size_t>(n),
                              q.bytes);
      streams.push_back(std::move(q));
    }
    for (const Stream& s : streams) {
      const util::ByteBuffer& stream = s.bytes;
      const double stream_bytes = static_cast<double>(stream.size());
      metrics.push_back({"block_bits_per_value/store/" + s.label,
                         stream_bytes * 8.0 / static_cast<double>(n),
                         "bits", false});

      for (const char* block_name : {"lz", "rans", "lz+rans"}) {
        const blockcodec::BlockCodec* bc = blockcodec::Find(block_name);
        const int iters = [&] {
          const double raw = target_bytes / stream_bytes;
          if (raw < 8.0) return 8;
          if (raw > 4096.0) return 4096;
          return static_cast<int>(raw);
        }();

        util::ByteBuffer envelope;
        blockcodec::EncodeBlock(*bc, stream.span(), envelope);  // warm-up
        util::WallTimer encode_timer;
        for (int i = 0; i < iters; ++i) {
          envelope.Clear();
          blockcodec::EncodeBlock(*bc, stream.span(), envelope);
        }
        const double encode_s = encode_timer.ElapsedSeconds();

        util::ByteBuffer decoded;
        util::WallTimer decode_timer;
        for (int i = 0; i < iters; ++i) {
          decoded.Clear();
          blockcodec::DecodeBlock(envelope.span(), stream.size(), decoded);
        }
        const double decode_s = decode_timer.ElapsedSeconds();

        const std::string suffix = std::string(block_name) + "/" + s.label;
        const double encode_gbps =
            stream_bytes * iters / encode_s / 1e9;
        const double decode_gbps =
            stream_bytes * iters / decode_s / 1e9;
        metrics.push_back(
            {"block_encode_gbps/" + suffix, encode_gbps, "GB/s", true});
        metrics.push_back(
            {"block_decode_gbps/" + suffix, decode_gbps, "GB/s", true});
        metrics.push_back(
            {"block_bits_per_value/" + suffix,
             static_cast<double>(envelope.size()) * 8.0 /
                 static_cast<double>(n),
             "bits", false});
        std::cerr << "bench_codec: block " << suffix << " iters=" << iters
                  << " encode=" << encode_gbps << " GB/s decode="
                  << decode_gbps << " GB/s ratio="
                  << stream_bytes / static_cast<double>(envelope.size())
                  << "\n";
      }
    }
  }

  std::string json;
  json += "{\n  \"schema\": \"threelc-bench-v1\",\n  \"bench\": \"codec\",\n";
  json += "  \"commit\": ";
  AppendJsonString(json, commit);
  json += ",\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const Metric& m = metrics[i];
    json += "    ";
    AppendJsonString(json, m.key);
    json += ": {\"value\": " + std::to_string(m.value) + ", \"unit\": ";
    AppendJsonString(json, m.unit);
    json += ", \"higher_is_better\": ";
    json += m.higher_is_better ? "true" : "false";
    json += "}";
    if (i + 1 < metrics.size()) json += ",";
    json += "\n";
  }
  json += "  }\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_codec: cannot open " << out_path << "\n";
    return 1;
  }
  out << json;
  std::cerr << "bench_codec: wrote " << out_path << "\n";
  return 0;
}
