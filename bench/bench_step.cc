// Distributed step-latency bench for the perf regression gate.
//
// Runs a real RpcServer + N RpcWorker threads over loopback TCP (the same
// wiring as examples/distributed_training) with server telemetry on, then
// reads the step/total_ms and step/<phase>_ms histograms the server
// recorded and emits a machine-readable BENCH_step.json for
// tools/check_perf.py.
//
// Also enforces the monitoring-overhead budget: with telemetry on, the
// stage-profiler scopes sprinkled through the codec, transport, and server
// step must cost < 2% of a median step. The bound is computed from this
// process's own numbers — measured per-scope cost x scopes actually
// entered per step — so it holds on slow CI machines too. Violation exits
// non-zero, independent of the baseline comparison.
//
// Usage: bench_step [--out=BENCH_step.json] [--steps=40] [--workers=2]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compress/factory.h"
#include "data/synthetic.h"
#include "obs/stage_profiler.h"
#include "obs/telemetry.h"
#include "ps/plan.h"
#include "ps/server.h"
#include "ps/worker.h"
#include "rpc/runtime.h"
#include "train/experiment.h"
#include "train/model_zoo.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace threelc;

namespace {

struct Metric {
  std::string key;
  double value = 0.0;
  std::string unit;
  bool higher_is_better = false;
};

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

// One worker lifecycle, mirroring tests/rpc_runtime_test.cc (including the
// sampler seeding that makes the run reproducible).
bool RunOneWorker(const train::ExperimentConfig& config,
                  const data::SyntheticData& data, int worker_id, int port,
                  std::string* error) {
  const train::TrainerConfig& tc = config.trainer;
  nn::Model model = train::BuildMlp(config.model, config.model_seed);
  const ps::TensorPlan plan =
      ps::TensorPlan::FromParams(model.Params(), tc.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(tc.codec));
  ps::Worker ps_worker(worker_id, model, plan, codec);

  util::Rng seeder(tc.seed);
  util::Rng rng = seeder.Fork();
  for (int i = 0; i < worker_id; ++i) rng = seeder.Fork();
  data::Sampler sampler(data.train, rng, tc.augment_noise);

  rpc::RpcWorkerConfig wc;
  wc.port = port;
  wc.worker_id = worker_id;
  wc.batch_size = tc.batch_size;
  wc.handshake_timeout_ms = 10000;
  wc.pull_timeout_ms = 60000;
  wc.io_timeout_ms = 10000;
  rpc::RpcWorker worker(wc, ps_worker, plan, codec->name(),
                        std::move(sampler));
  const bool ok = worker.Run();
  if (!ok && error != nullptr) *error = worker.error();
  return ok;
}

// Exact per-step wall times parsed from the telemetry step log — the
// step/total_ms histogram's 5ms bins are too coarse to gate a 10%
// regression on a low-single-digit-ms loopback step.
std::vector<double> ParseStepWallMs(const std::string& path) {
  std::vector<double> out;
  std::ifstream in(path);
  std::string line;
  const std::string key = "\"step_wall_ms\":";
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"step\"") == std::string::npos) continue;
    const std::size_t pos = line.find(key);
    if (pos == std::string::npos) continue;
    out.push_back(std::strtod(line.c_str() + pos + key.size(), nullptr));
  }
  return out;
}

double ExactQuantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

// Measured cost (ns) of one ScopedStage enter+exit against `profiler`.
double MeasureScopeNs(obs::StageProfiler& profiler) {
  constexpr int kIters = 200000;
  // Warm-up resolves the stage id and faults the TLS cache in.
  { obs::ScopedStage warm(&profiler, "overhead_probe"); }
  util::WallTimer timer;
  for (int i = 0; i < kIters; ++i) {
    obs::ScopedStage stage(&profiler, "overhead_probe");
  }
  return timer.ElapsedSeconds() * 1e9 / kIters;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_step.json");
  const std::int64_t steps = flags.GetInt("steps", 40);
  const int num_workers = static_cast<int>(flags.GetInt("workers", 2));
  const std::string metrics_path =
      flags.GetString("metrics-out", "bench_step_metrics.jsonl");

  const char* commit_env = std::getenv("THREELC_COMMIT");
  const std::string commit = commit_env != nullptr ? commit_env : "unknown";

  train::ExperimentConfig config = train::SmallExperiment();
  train::TrainerConfig& tc = config.trainer;
  tc.num_workers = num_workers;
  tc.total_steps = steps;
  tc.batch_size = 16;
  tc.eval_every = 0;
  tc.codec = compress::CodecConfig::ThreeLC(1.00f);
  const data::SyntheticData data = data::MakeTeacherDataset(config.data);

  obs::TelemetryOptions topt;
  topt.metrics_path = metrics_path;
  topt.per_tensor = false;
  obs::Telemetry tel(topt);

  // Count only this run's stage entries (the profiler is process-global
  // and Telemetry construction just enabled it).
  obs::StageProfiler::Global().Reset();

  nn::Model model = train::BuildMlp(config.model, config.model_seed);
  const ps::TensorPlan plan =
      ps::TensorPlan::FromParams(model.Params(), tc.min_compress_elems);
  auto codec = std::shared_ptr<const compress::Compressor>(
      compress::MakeCompressor(tc.codec));
  ps::ParameterServer ps(model, plan, codec, tc.optimizer);

  rpc::RpcServerConfig sc;
  sc.num_workers = tc.num_workers;
  sc.total_steps = tc.total_steps;
  sc.lr_max = tc.lr_max;
  sc.lr_min = tc.lr_min;
  sc.handshake_timeout_ms = 10000;
  sc.step_timeout_ms = 60000;
  sc.shutdown_timeout_ms = 10000;
  sc.telemetry = &tel;
  rpc::RpcServer server(sc, ps, codec->name());
  std::string error;
  if (!server.Listen(&error)) {
    std::cerr << "bench_step: listen failed: " << error << "\n";
    return 1;
  }

  bool server_ok = false;
  std::thread server_thread([&] { server_ok = server.Run(); });
  std::vector<std::thread> workers;
  std::vector<std::string> worker_errors(static_cast<std::size_t>(num_workers));
  std::vector<char> worker_ok(static_cast<std::size_t>(num_workers), 0);
  for (int w = 0; w < num_workers; ++w) {
    workers.emplace_back([&, w] {
      worker_ok[static_cast<std::size_t>(w)] =
          RunOneWorker(config, data, w, server.port(),
                       &worker_errors[static_cast<std::size_t>(w)])
              ? 1
              : 0;
    });
  }
  for (auto& t : workers) t.join();
  server_thread.join();
  if (!server_ok) {
    std::cerr << "bench_step: server failed: " << server.error() << "\n";
    return 1;
  }
  for (int w = 0; w < num_workers; ++w) {
    if (!worker_ok[static_cast<std::size_t>(w)]) {
      std::cerr << "bench_step: worker " << w << " failed: "
                << worker_errors[static_cast<std::size_t>(w)] << "\n";
      return 1;
    }
  }

  // Finish the step log (Flush is idempotent; the Telemetry object and its
  // registry stay readable), then recover exact per-step wall times.
  tel.Flush();
  std::vector<double> wall_ms = ParseStepWallMs(metrics_path);
  if (wall_ms.size() != static_cast<std::size_t>(steps)) {
    std::cerr << "bench_step: expected " << steps << " step records, parsed "
              << wall_ms.size() << " from " << metrics_path << "\n";
    return 1;
  }
  std::sort(wall_ms.begin(), wall_ms.end());
  const double p50 = ExactQuantile(wall_ms, 0.50);
  const double p95 = ExactQuantile(wall_ms, 0.95);
  const double p99 = ExactQuantile(wall_ms, 0.99);

  std::vector<Metric> metrics;
  metrics.push_back({"step_latency_ms/p50", p50, "ms", false});
  metrics.push_back({"step_latency_ms/p95", p95, "ms", false});
  metrics.push_back({"step_latency_ms/p99", p99, "ms", false});
  const char* phases[] = {"step_barrier", "decode",     "aggregate", "optimize",
                          "encode",       "checkpoint", "fan_out"};
  for (const char* phase : phases) {
    obs::HistogramStat* h = tel.metrics().histogram(
        std::string("step/") + phase + "_ms", 0.0, 1000.0, 200);
    metrics.push_back({std::string("phase_mean_ms/") + phase,
                       h->stat().mean(), "ms", false});
  }

  // --- Monitoring-overhead budget ----------------------------------------
  // scopes/step actually entered this run (all threads, both roles) x the
  // measured per-scope delta between profiling on and off, against the
  // median step. Deterministic given the machine, unlike comparing two
  // separately-timed training runs, whose step times vary more than 2% on
  // shared runners.
  std::uint64_t total_scopes = 0;
  for (const obs::StageSample& s : obs::StageProfiler::Global().Snapshot()) {
    total_scopes += s.count;
  }
  const double scopes_per_step =
      static_cast<double>(total_scopes) / static_cast<double>(steps);
  obs::StageProfiler probe_on;
  probe_on.set_enabled(true);
  obs::StageProfiler probe_off;  // disabled: the relaxed-load-only path
  const double on_ns = MeasureScopeNs(probe_on);
  const double off_ns = MeasureScopeNs(probe_off);
  const double delta_ns = on_ns > off_ns ? on_ns - off_ns : 0.0;
  const double overhead_frac =
      p50 > 0.0 ? scopes_per_step * delta_ns / (p50 * 1e6) : 0.0;
  metrics.push_back({"profiler_overhead_frac", overhead_frac, "frac", false});
  std::cerr << "bench_step: p50=" << p50 << "ms p95=" << p95 << "ms p99="
            << p99 << "ms scopes/step=" << scopes_per_step << " scope_on="
            << on_ns << "ns scope_off=" << off_ns << "ns overhead="
            << overhead_frac * 100.0 << "%\n";

  std::string json;
  json += "{\n  \"schema\": \"threelc-bench-v1\",\n  \"bench\": \"step\",\n";
  json += "  \"commit\": ";
  AppendJsonString(json, commit);
  json += ",\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const Metric& m = metrics[i];
    json += "    ";
    AppendJsonString(json, m.key);
    json += ": {\"value\": " + std::to_string(m.value) + ", \"unit\": ";
    AppendJsonString(json, m.unit);
    json += ", \"higher_is_better\": ";
    json += m.higher_is_better ? "true" : "false";
    json += "}";
    if (i + 1 < metrics.size()) json += ",";
    json += "\n";
  }
  json += "  }\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_step: cannot open " << out_path << "\n";
    return 1;
  }
  out << json;
  std::cerr << "bench_step: wrote " << out_path << "\n";
  std::remove(metrics_path.c_str());

  if (overhead_frac >= 0.02) {
    std::cerr << "bench_step: FAIL monitoring overhead "
              << overhead_frac * 100.0 << "% >= 2% budget\n";
    return 2;
  }
  return 0;
}
