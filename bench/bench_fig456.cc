// Figures 4, 5, 6: total training time vs. test accuracy at 25/50/75/100%
// of standard training steps, at 10 Mbps, 100 Mbps, and 1 Gbps.
//
// One training run per (design, step budget) pair determines both accuracy
// and per-step traffic; training time under each link then comes from the
// same time model the paper's extrapolation methodology uses (§5.2), so a
// single sweep produces all three figures.
#include <cstdio>

#include "bench_common.h"
#include "util/csv_writer.h"

using namespace threelc;

int main() {
  auto config = train::DefaultExperiment();
  const std::int64_t standard = bench::StandardSteps(config);
  auto data = data::MakeTeacherDataset(config.data);
  const auto budgets = bench::StepBudgets(standard);
  const auto links = train::PaperLinks();

  util::CsvWriter csv(
      bench::ResultsPath("fig456.csv"),
      {"design", "steps", "budget_pct", "accuracy", "minutes_10mbps",
       "minutes_100mbps", "minutes_1gbps"});

  // Collect all runs first (training is bandwidth-independent).
  struct Run {
    std::string name;
    std::int64_t steps;
    train::TrainResult result;
  };
  std::vector<Run> runs;
  train::TrainResult baseline_100;  // for context in stdout
  for (const auto& design : bench::FigureDesigns()) {
    for (std::int64_t steps : budgets) {
      auto result = train::RunDesign(config, design, steps, data);
      runs.push_back({result.codec_name, steps, std::move(result)});
    }
  }

  for (std::size_t li = 0; li < links.size(); ++li) {
    std::printf("\nFigure %zu: training time vs accuracy @ %s "
                "(budgets: 25/50/75/100%% of %lld steps)\n",
                4 + li, links[li].ToString().c_str(),
                static_cast<long long>(standard));
    std::printf("%-22s %10s %10s %16s %14s\n", "Design", "steps", "budget",
                "time (minutes)", "accuracy (%)");
    bench::PrintRule(80);
    for (const auto& run : runs) {
      const auto tm =
          train::PaperTimeModel(links[li], run.result.model_parameters);
      const double minutes =
          train::EstimateTrainingSeconds(run.result, tm) / 60.0;
      std::printf("%-22s %10lld %9lld%% %16.1f %14.2f\n", run.name.c_str(),
                  static_cast<long long>(run.steps),
                  static_cast<long long>(run.steps * 100 / standard), minutes,
                  run.result.final_test_accuracy * 100.0);
    }
  }

  for (const auto& run : runs) {
    double minutes[3];
    for (std::size_t li = 0; li < links.size(); ++li) {
      const auto tm =
          train::PaperTimeModel(links[li], run.result.model_parameters);
      minutes[li] = train::EstimateTrainingSeconds(run.result, tm) / 60.0;
    }
    csv.NewRow()
        .Add(run.name)
        .Add(run.steps)
        .Add(run.steps * 100 / standard)
        .Add(run.result.final_test_accuracy * 100.0)
        .Add(minutes[0])
        .Add(minutes[1])
        .Add(minutes[2]);
  }
  std::printf("\nCSV written to %s\n",
              bench::ResultsPath("fig456.csv").c_str());
  return 0;
}
