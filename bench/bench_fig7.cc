// Figure 7: runtime training loss (left) and test accuracy (right) over
// training steps for the baseline, the representative quantization /
// sparsification / local-steps designs, and 3LC (s=1.00).
#include <cstdio>

#include "bench_common.h"
#include "util/csv_writer.h"

using namespace threelc;

int main() {
  auto config = train::DefaultExperiment();
  const std::int64_t steps = bench::StandardSteps(config);
  config.trainer.eval_every = std::max<std::int64_t>(steps / 24, 1);
  auto data = data::MakeTeacherDataset(config.data);

  const std::vector<compress::CodecConfig> designs = {
      compress::CodecConfig::Float32(),
      compress::CodecConfig::MqeOneBit(),
      compress::CodecConfig::Sparsification(0.05f),
      compress::CodecConfig::TwoLocalSteps(),
      compress::CodecConfig::ThreeLC(1.00f),
  };

  util::CsvWriter loss_csv(bench::ResultsPath("fig7_loss.csv"),
                           {"design", "step", "training_loss"});
  util::CsvWriter acc_csv(bench::ResultsPath("fig7_accuracy.csv"),
                          {"design", "step", "test_accuracy"});

  std::printf("Figure 7: training loss and test accuracy over %lld steps\n",
              static_cast<long long>(steps));
  for (const auto& design : designs) {
    auto result = train::RunDesign(config, design, steps, data);
    // Smooth the loss series lightly for readability (the paper plots raw
    // but our stdout table samples sparsely).
    const std::size_t stride =
        std::max<std::size_t>(result.steps.size() / 24, 1);
    std::printf("\n%s\n", result.codec_name.c_str());
    std::printf("  %10s %14s %16s\n", "step", "training loss",
                "test accuracy(%)");
    for (const auto& s : result.steps) {
      loss_csv.NewRow().Add(result.codec_name).Add(s.step).Add(s.loss);
    }
    for (const auto& e : result.evals) {
      acc_csv.NewRow()
          .Add(result.codec_name)
          .Add(e.step)
          .Add(e.test_accuracy * 100.0);
    }
    for (std::size_t i = 0; i < result.steps.size(); i += stride) {
      // Match loss rows with the nearest eval row for a compact table.
      double acc = 0.0;
      for (const auto& e : result.evals) {
        if (e.step <= result.steps[i].step + 1) acc = e.test_accuracy;
      }
      std::printf("  %10lld %14.4f %16.2f\n",
                  static_cast<long long>(result.steps[i].step),
                  result.steps[i].loss, acc * 100.0);
    }
  }
  std::printf("\nCSV written to %s and %s\n",
              bench::ResultsPath("fig7_loss.csv").c_str(),
              bench::ResultsPath("fig7_accuracy.csv").c_str());
  return 0;
}
