// Straggler-mitigation experiment (paper §2.1): plain BSP vs backup
// workers under simulated stragglers, with and without 3LC compression.
//
// Reproduces the qualitative claims: stragglers inflate BSP step time;
// backup workers recover most of it at a small accuracy cost (fewer
// gradient contributions per step); traffic compression composes with
// either barrier scheme.
#include <cstdio>

#include "bench_common.h"
#include "util/csv_writer.h"

using namespace threelc;

int main() {
  auto config = train::DefaultExperiment();
  const std::int64_t steps = bench::StandardSteps(config) / 2;
  auto data = data::MakeTeacherDataset(config.data);
  const auto link = net::LinkConfig::HundredMbps();

  util::CsvWriter csv(bench::ResultsPath("stragglers.csv"),
                      {"barrier", "codec", "accuracy", "minutes_100mbps",
                       "mean_compute_multiplier"});

  std::printf("Straggler mitigation: BSP vs backup workers @ 100 Mbps "
              "(%lld steps; 20%% straggler probability, 8x slowdown)\n\n",
              static_cast<long long>(steps));
  std::printf("%-24s %-16s %12s %16s %12s\n", "Barrier", "Codec",
              "accuracy", "time (minutes)", "wait mult");
  bench::PrintRule(85);

  struct Case {
    const char* barrier;
    int backup;
    bool stragglers;
    compress::CodecConfig codec;
  };
  const Case cases[] = {
      {"BSP (no stragglers)", 0, false, compress::CodecConfig::Float32()},
      {"BSP", 0, true, compress::CodecConfig::Float32()},
      {"2 backup workers", 2, true, compress::CodecConfig::Float32()},
      {"BSP", 0, true, compress::CodecConfig::ThreeLC(1.0f)},
      {"2 backup workers", 2, true, compress::CodecConfig::ThreeLC(1.0f)},
  };
  for (const auto& c : cases) {
    train::ExperimentConfig cfg = config;
    cfg.trainer.backup_workers = c.backup;
    if (c.stragglers) {
      cfg.trainer.straggler_prob = 0.2;
      cfg.trainer.straggler_slowdown = 8.0;
      cfg.trainer.straggler_jitter = 0.05;
    }
    auto r = train::RunDesign(cfg, c.codec, steps, data);
    const auto tm = train::PaperTimeModel(link, r.model_parameters);
    const double minutes = train::EstimateTrainingSeconds(r, tm) / 60.0;
    double mean_mult = 0.0;
    for (const auto& s : r.steps) mean_mult += s.compute_multiplier;
    mean_mult /= static_cast<double>(r.steps.size());
    std::printf("%-24s %-16s %11.2f%% %16.1f %12.2f\n", c.barrier,
                r.codec_name.c_str(), r.final_test_accuracy * 100.0, minutes,
                mean_mult);
    csv.NewRow()
        .Add(c.barrier)
        .Add(r.codec_name)
        .Add(r.final_test_accuracy * 100.0)
        .Add(minutes)
        .Add(mean_mult);
  }
  bench::PrintRule(85);
  std::printf("CSV written to %s\n",
              bench::ResultsPath("stragglers.csv").c_str());
  return 0;
}
