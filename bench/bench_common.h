// Shared helpers for the experiment benches (one binary per paper
// table/figure). Each bench prints the paper-shaped rows/series to stdout
// and writes a CSV under ./results/ for plotting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "compress/factory.h"
#include "train/experiment.h"

namespace threelc::bench {

// Standard step budget, overridable for quick runs:
//   THREELC_STEPS=200 ./bench_table1
inline std::int64_t StandardSteps(const train::ExperimentConfig& config) {
  if (const char* env = std::getenv("THREELC_STEPS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return v;
  }
  return config.standard_steps;
}

// Ensure ./results exists; returns the CSV path for a given name.
inline std::string ResultsPath(const std::string& name) {
  std::filesystem::create_directories("results");
  return "results/" + name;
}

// The nine designs plotted in Figures 4–6 (Table 1 minus the s=1.5/1.9
// rows), in legend order.
inline std::vector<compress::CodecConfig> FigureDesigns() {
  return {
      compress::CodecConfig::Float32(),
      compress::CodecConfig::EightBit(),
      compress::CodecConfig::StochThreeQE(),
      compress::CodecConfig::MqeOneBit(),
      compress::CodecConfig::Sparsification(0.25f),
      compress::CodecConfig::Sparsification(0.05f),
      compress::CodecConfig::TwoLocalSteps(),
      compress::CodecConfig::ThreeLC(1.00f),
      compress::CodecConfig::ThreeLC(1.75f),
  };
}

// Step budgets used throughout §5.3: 25/50/75/100% of standard steps.
inline std::vector<std::int64_t> StepBudgets(std::int64_t standard) {
  return {standard / 4, standard / 2, standard * 3 / 4, standard};
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace threelc::bench
