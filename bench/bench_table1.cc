// Table 1: speedup over the 32-bit float baseline at 10 Mbps / 100 Mbps /
// 1 Gbps, and test accuracy, for all eleven compared designs using
// standard training steps.
//
// Output columns mirror the paper's Table 1. Speedups come from the
// calibrated time model (DESIGN.md): traffic and codec CPU time are
// measured per step and extrapolated to ResNet-110 scale; the network
// constants were calibrated on the baseline only.
#include <cstdio>

#include "bench_common.h"
#include "util/csv_writer.h"

using namespace threelc;

int main() {
  auto config = train::DefaultExperiment();
  const std::int64_t steps = bench::StandardSteps(config);
  auto data = data::MakeTeacherDataset(config.data);

  std::printf("Table 1: speedup over baseline and test accuracy "
              "(standard steps = %lld)\n",
              static_cast<long long>(steps));
  std::printf("%-22s %12s %12s %12s %14s %12s\n", "Design", "@ 10 Mbps",
              "@ 100 Mbps", "@ 1 Gbps", "Accuracy (%)", "Difference");
  bench::PrintRule();

  util::CsvWriter csv(bench::ResultsPath("table1.csv"),
                      {"design", "speedup_10mbps", "speedup_100mbps",
                       "speedup_1gbps", "accuracy", "accuracy_diff",
                       "codec_bits_per_value", "codec_ratio"});

  train::TrainResult baseline;
  double baseline_acc = 0.0;
  for (const auto& design : compress::Table1Designs()) {
    auto result = train::RunDesign(config, design, steps, data);
    if (baseline.steps.empty()) {
      baseline = result;
      baseline_acc = result.final_test_accuracy;
    }
    double speedups[3];
    int i = 0;
    for (const auto& link : train::PaperLinks()) {
      const auto tm = train::PaperTimeModel(link, result.model_parameters);
      speedups[i++] = train::Speedup(baseline, result, tm);
    }
    const double acc = result.final_test_accuracy * 100.0;
    const double diff = acc - baseline_acc * 100.0;
    std::printf("%-22s %12.2f %12.2f %12.2f %14.2f %+12.2f\n",
                result.codec_name.c_str(), speedups[0], speedups[1],
                speedups[2], acc, diff);
    csv.NewRow()
        .Add(result.codec_name)
        .Add(speedups[0])
        .Add(speedups[1])
        .Add(speedups[2])
        .Add(acc)
        .Add(diff)
        .Add(result.CodecBitsPerValue())
        .Add(result.CodecCompressionRatio());
  }
  bench::PrintRule();
  std::printf("CSV written to %s\n", bench::ResultsPath("table1.csv").c_str());
  return 0;
}
