// Ablation benches for the design choices DESIGN.md calls out:
//
//  A. Error accumulation vs. stochastic quantization (accuracy, §3.1):
//     3LC with EA vs. 3LC without EA vs. Stoch 3-value + QE.
//  B. Zero-run encoding on/off (traffic, §3.3).
//  C. Quartic vs. 2-bit packing (size, §3.2).
//  D. Shared vs. per-worker pull compression (server CPU, §3 / Fig. 2b).
//  E. Fine-grained vs coarse barriers (communication/computation overlap,
//     §2.1) via the discrete-event step simulator.
//  F. Zero-run encoding vs byte-wise Huffman coding (§3.3): ratio and
//     speed on real quartic streams.
#include <cstdio>

#include "bench_common.h"
#include "compress/huffman.h"
#include "compress/quantize3.h"
#include "compress/quartic.h"
#include "compress/three_lc.h"
#include "compress/zero_run.h"
#include "net/event_sim.h"
#include "tensor/tensor_ops.h"
#include "util/csv_writer.h"
#include "util/timer.h"

using namespace threelc;

namespace {

void AblationErrorAccumulation(const train::ExperimentConfig& config,
                               const data::SyntheticData& data,
                               std::int64_t steps, util::CsvWriter& csv) {
  std::printf("\n[A] Error accumulation vs stochastic quantization "
              "(%lld steps)\n",
              static_cast<long long>(steps));
  std::printf("%-28s %14s %14s\n", "Design", "accuracy (%)", "bits/value");
  bench::PrintRule(60);
  compress::CodecConfig ea = compress::CodecConfig::ThreeLC(1.0f);
  compress::CodecConfig no_ea = ea;
  no_ea.error_accumulation = false;
  const std::vector<compress::CodecConfig> designs = {
      ea, no_ea, compress::CodecConfig::StochThreeQE()};
  for (const auto& design : designs) {
    auto r = train::RunDesign(config, design, steps, data);
    std::printf("%-28s %14.2f %14.3f\n", r.codec_name.c_str(),
                r.final_test_accuracy * 100.0, r.CodecBitsPerValue());
    csv.NewRow()
        .Add("error_accumulation")
        .Add(r.codec_name)
        .Add(r.final_test_accuracy * 100.0)
        .Add(r.CodecBitsPerValue());
  }
}

void AblationZre(const train::ExperimentConfig& config,
                 const data::SyntheticData& data, std::int64_t steps,
                 util::CsvWriter& csv) {
  std::printf("\n[B] Zero-run encoding on/off (%lld steps)\n",
              static_cast<long long>(steps));
  std::printf("%-28s %14s %14s\n", "Design", "ratio (x)", "bits/value");
  bench::PrintRule(60);
  for (float s : {1.0f, 1.75f}) {
    for (bool zre : {true, false}) {
      compress::CodecConfig cfg = compress::CodecConfig::ThreeLC(s);
      cfg.zero_run = zre;
      auto r = train::RunDesign(config, cfg, steps, data);
      std::printf("%-28s %14.1f %14.3f\n", r.codec_name.c_str(),
                  r.CodecCompressionRatio(), r.CodecBitsPerValue());
      csv.NewRow()
          .Add("zre")
          .Add(r.codec_name)
          .Add(r.CodecCompressionRatio())
          .Add(r.CodecBitsPerValue());
    }
  }
}

void AblationQuarticVs2Bit(util::CsvWriter& csv) {
  std::printf("\n[C] Quartic vs 2-bit packing (fixed-size stage only)\n");
  const std::size_t n = 1'000'000;
  const double quartic_bits =
      8.0 * static_cast<double>(compress::QuarticEncodedSize(n)) /
      static_cast<double>(n);
  const double twobit_bits =
      8.0 * static_cast<double>(compress::TwoBitEncodedSize(n)) /
      static_cast<double>(n);
  std::printf("  quartic: %.3f bits/value, 2-bit: %.3f bits/value "
              "(quartic is %.0f%% smaller)\n",
              quartic_bits, twobit_bits,
              (1.0 - quartic_bits / twobit_bits) * 100.0);
  csv.NewRow().Add("packing").Add("quartic").Add(quartic_bits).Add(0);
  csv.NewRow().Add("packing").Add("2bit").Add(twobit_bits).Add(0);
}

void AblationSharedPulls(util::CsvWriter& csv) {
  std::printf("\n[D] Shared vs per-worker pull compression "
              "(server encode CPU for 10 workers)\n");
  const std::int64_t n = 1 << 18;
  const int workers = 10;
  compress::ThreeLC codec({1.0f, true, true});
  util::Rng rng(7);
  tensor::Tensor delta(tensor::Shape{n});
  tensor::FillNormal(delta, rng, 0.0f, 0.01f);

  // Shared: encode once per step.
  auto shared_ctx = codec.MakeContext(delta.shape());
  util::ByteBuffer buf;
  util::WallTimer t1;
  const int reps = 50;
  for (int i = 0; i < reps; ++i) {
    buf.Clear();
    codec.Encode(delta, *shared_ctx, buf);
  }
  const double shared_s = t1.ElapsedSeconds() / reps;

  // Per-worker: encode once per worker per step (what a server without
  // shared compression would do).
  std::vector<std::unique_ptr<compress::Context>> ctxs;
  for (int w = 0; w < workers; ++w) {
    ctxs.push_back(codec.MakeContext(delta.shape()));
  }
  util::WallTimer t2;
  for (int i = 0; i < reps; ++i) {
    for (int w = 0; w < workers; ++w) {
      buf.Clear();
      codec.Encode(delta, *ctxs[static_cast<std::size_t>(w)], buf);
    }
  }
  const double per_worker_s = t2.ElapsedSeconds() / reps;

  std::printf("  shared: %.3f ms/step, per-worker: %.3f ms/step "
              "(%.1fx more server CPU)\n",
              shared_s * 1e3, per_worker_s * 1e3, per_worker_s / shared_s);
  csv.NewRow().Add("shared_pulls").Add("shared").Add(shared_s * 1e3).Add(0);
  csv.NewRow()
      .Add("shared_pulls")
      .Add("per_worker")
      .Add(per_worker_s * 1e3)
      .Add(0);
}

void AblationBarriers(util::CsvWriter& csv) {
  std::printf("\n[E] Fine-grained vs coarse barriers "
              "(event-driven step simulation, ResNet-110-like: 110 layers)\n");
  std::printf("%-12s %-12s %16s %16s %14s\n", "bandwidth", "traffic",
              "coarse (s/step)", "fine (s/step)", "overlap");
  bench::PrintRule(75);
  // 110 layers, ~1.73M params total, 0.35 s compute per step (both passes).
  const std::size_t layers_n = 110;
  const std::size_t bytes_per_layer = 1'730'000 * 4 / layers_n;
  const double compute_per_layer = 0.35 / 2.0 / static_cast<double>(layers_n);
  for (double ratio : {1.0, 39.4}) {  // raw float32 vs 3LC s=1
    std::vector<net::LayerCost> layers(layers_n);
    for (auto& l : layers) {
      l.push_bytes = static_cast<std::size_t>(
          static_cast<double>(bytes_per_layer) / ratio);
      l.pull_bytes = l.push_bytes;
      l.compute_seconds = compute_per_layer;
    }
    for (const auto& link : train::PaperLinks()) {
      const auto fine = net::SimulateFineGrainedStep(layers,
                                                     link.bandwidth_bps);
      const auto coarse = net::SimulateCoarseStep(layers, link.bandwidth_bps);
      std::printf("%-12s %-12s %16.3f %16.3f %13.0f%%\n",
                  link.ToString().c_str(), ratio == 1.0 ? "raw" : "3LC s=1",
                  coarse.makespan_seconds, fine.makespan_seconds,
                  fine.overlap_fraction * 100.0);
      csv.NewRow()
          .Add("barriers_" + link.ToString() +
               (ratio == 1.0 ? "_raw" : "_3lc"))
          .Add("fine_vs_coarse")
          .Add(fine.makespan_seconds)
          .Add(coarse.makespan_seconds);
    }
  }
}

void AblationZreVsHuffman(util::CsvWriter& csv) {
  std::printf("\n[F] Zero-run encoding vs Huffman coding on quartic "
              "streams (%d values)\n", 1 << 20);
  std::printf("%-10s %-10s %12s %12s %14s %14s\n", "s", "codec",
              "bytes", "bits/val", "enc MB/s", "entropy b/B");
  bench::PrintRule(80);
  const std::size_t n = 1 << 20;
  util::Rng rng(31);
  tensor::Tensor input(tensor::Shape{static_cast<std::int64_t>(n)});
  tensor::FillNormal(input, rng, 0.0f, 0.01f);
  std::vector<std::int8_t> ternary(n);
  for (float s : {1.0f, 1.75f}) {
    compress::Quantize3(input.data(), n, s, ternary.data());
    util::ByteBuffer quartic;
    compress::QuarticEncode(ternary.data(), n, quartic);
    const double entropy = compress::ByteEntropyBits(quartic.span());

    util::ByteBuffer zre;
    util::WallTimer t1;
    const int reps = 20;
    for (int i = 0; i < reps; ++i) {
      zre.Clear();
      compress::ZeroRunEncode(quartic.span(), zre);
    }
    const double zre_mbps = static_cast<double>(quartic.size()) * reps /
                            t1.ElapsedSeconds() / 1e6;

    util::ByteBuffer huff;
    util::WallTimer t2;
    for (int i = 0; i < reps; ++i) {
      huff.Clear();
      compress::HuffmanEncode(quartic.span(), huff);
    }
    const double huff_mbps = static_cast<double>(quartic.size()) * reps /
                             t2.ElapsedSeconds() / 1e6;

    std::printf("%-10.2f %-10s %12zu %12.3f %14.0f %14.3f\n", s, "ZRE",
                zre.size(), 8.0 * static_cast<double>(zre.size()) / n,
                zre_mbps, entropy);
    std::printf("%-10.2f %-10s %12zu %12.3f %14.0f %14.3f\n", s, "Huffman",
                huff.size(), 8.0 * static_cast<double>(huff.size()) / n,
                huff_mbps, entropy);
    csv.NewRow().Add("zre_vs_huffman").Add("zre_s" + std::to_string(s))
        .Add(8.0 * static_cast<double>(zre.size()) / n).Add(zre_mbps);
    csv.NewRow().Add("zre_vs_huffman").Add("huffman_s" + std::to_string(s))
        .Add(8.0 * static_cast<double>(huff.size()) / n).Add(huff_mbps);
  }
  std::printf("  (ZRE trades a little ratio for byte-level simplicity and "
              "speed — §3.3.)\n");
}

}  // namespace

int main() {
  auto config = train::DefaultExperiment();
  // Ablation training runs use a reduced budget; accuracy *differences*
  // between EA and stochastic variants appear well before full training.
  const std::int64_t steps = bench::StandardSteps(config) / 2;
  auto data = data::MakeTeacherDataset(config.data);

  util::CsvWriter csv(bench::ResultsPath("ablation.csv"),
                      {"ablation", "variant", "metric1", "metric2"});

  AblationErrorAccumulation(config, data, steps, csv);
  AblationZre(config, data, steps, csv);
  AblationQuarticVs2Bit(csv);
  AblationSharedPulls(csv);
  AblationBarriers(csv);
  AblationZreVsHuffman(csv);
  std::printf("\nCSV written to %s\n",
              bench::ResultsPath("ablation.csv").c_str());
  return 0;
}
