// Figure 9: compressed size per state change (bits) at every training
// step, with zero-run encoding split by direction (push vs. pull), plus
// the fixed no-ZRE quartic line — for s = 1.00 (left) and s = 1.75
// (right).
//
// The paper's observations to reproduce: pulls are larger than pushes for
// most of training (aggregated gradients have lower variance early), and
// pushes grow past pulls near the end as workers' gradients sharpen.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "obs/telemetry.h"
#include "util/csv_writer.h"
#include "util/flags.h"

using namespace threelc;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  obs::ApplyLogLevelFlag(flags);
  auto config = train::DefaultExperiment();
  const std::int64_t steps = bench::StandardSteps(config);
  auto data = data::MakeTeacherDataset(config.data);

  // Optional telemetry (attached to the s=1.00 run).
  std::unique_ptr<obs::Telemetry> telemetry;
  const obs::TelemetryOptions tel_opts = obs::TelemetryOptionsFromFlags(flags);
  if (!tel_opts.trace_path.empty() || !tel_opts.metrics_path.empty() ||
      tel_opts.monitoring_enabled()) {
    telemetry = std::make_unique<obs::Telemetry>(tel_opts);
  }

  util::CsvWriter csv(bench::ResultsPath("fig9.csv"),
                      {"s", "step", "push_bits_per_value",
                       "pull_bits_per_value", "no_zre_bits_per_value"});

  for (float s : {1.00f, 1.75f}) {
    config.trainer.telemetry = s == 1.00f ? telemetry.get() : nullptr;
    auto result = train::RunDesign(
        config, compress::CodecConfig::ThreeLC(s), steps, data);
    std::printf("\nFigure 9 (s=%.2f): compressed bits per state change "
                "(codec traffic only; Without-ZRE line = 1.600)\n", s);
    std::printf("  %10s %12s %12s\n", "step", "push bits", "pull bits");
    const std::size_t stride =
        std::max<std::size_t>(result.steps.size() / 25, 1);
    double push_early = 0.0, pull_early = 0.0, push_late = 0.0,
           pull_late = 0.0;
    std::size_t early_n = 0, late_n = 0;
    for (std::size_t i = 0; i < result.steps.size(); ++i) {
      const auto& rec = result.steps[i];
      const auto rates = net::PerDirectionBitsPerValue(
          {rec.push_bytes_codec, rec.pull_bytes_codec, rec.push_values_codec,
           rec.pull_values_codec});
      const double push_bits = rates.push;
      const double pull_bits = rates.pull;
      csv.NewRow().Add(s).Add(rec.step).Add(push_bits).Add(pull_bits).Add(1.6);
      if (i % stride == 0) {
        std::printf("  %10lld %12.3f %12.3f\n",
                    static_cast<long long>(rec.step), push_bits, pull_bits);
      }
      if (i < result.steps.size() / 4) {
        push_early += push_bits;
        pull_early += pull_bits;
        ++early_n;
      } else if (i >= result.steps.size() * 3 / 4) {
        push_late += push_bits;
        pull_late += pull_bits;
        ++late_n;
      }
    }
    std::printf("  early quartile mean: push %.3f vs pull %.3f bits\n",
                push_early / static_cast<double>(early_n),
                pull_early / static_cast<double>(early_n));
    std::printf("  late quartile mean:  push %.3f vs pull %.3f bits\n",
                push_late / static_cast<double>(late_n),
                pull_late / static_cast<double>(late_n));
  }
  std::printf("\nCSV written to %s\n", bench::ResultsPath("fig9.csv").c_str());
  return 0;
}
